// Ablation: the latency estimator's EWMA weight (alpha). The paper uses "a
// moving average" without specifying reactivity. Small alpha is stable but
// slow to notice a user walking into a dead zone; large alpha reacts fast
// but chases service-time noise. Measures steady-state latency spread and
// recovery time after a mid-run signal collapse on one device.
#include "bench/bench_util.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Row {
  double steady_mean_ms;
  double steady_stddev_ms;
  double recovery_s;  // Until throughput is back >= 22 FPS after the event.
};

Row run(double alpha, double measure_s, std::uint64_t seed) {
  apps::TestbedConfig config;
  config.workers = {"B", "G", "H"};
  config.weak_signal_bcd = false;
  config.swarm.worker.manager.estimator.ewma_alpha = alpha;
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));
  const SimTime t0 = bed.sim().now();
  bed.run(seconds(measure_s));

  Row r{};
  const auto stats = bed.swarm().metrics().latency_stats(t0, bed.sim().now());
  r.steady_mean_ms = stats.mean();
  r.steady_stddev_ms = stats.stddev();

  // Signal collapse on G; watch throughput per second until recovery.
  const SimTime event = bed.sim().now();
  bed.swarm().walker(bed.id("G")).jump_to_rssi(-78.0);
  bed.run(seconds(30));
  const auto bins = bed.swarm().metrics().throughput_bins(
      event, event + seconds(30));
  r.recovery_s = 30.0;
  for (std::size_t i = 0; i + 2 < bins.size(); ++i) {
    if (bins[i] >= 22 && bins[i + 1] >= 22 && bins[i + 2] >= 22) {
      r.recovery_s = double(i);
      break;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ablate_estimator", 40.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Ablation: latency-estimator EWMA alpha (LRS; B,G,H; G's "
               "signal collapses mid-run) ===\n";
  TextTable table({"alpha", "steady mean (ms)", "steady stddev (ms)",
                   "recovery after collapse (s)"});
  for (double alpha : {0.05, 0.1, 0.3, 0.5, 0.9}) {
    const Row r = run(alpha, measure_s, cli.seed);
    table.row(alpha, r.steady_mean_ms, r.steady_stddev_ms, r.recovery_s);

    obs::Json& row = report.add_result();
    row["alpha"] = alpha;
    row["steady_mean_ms"] = r.steady_mean_ms;
    row["steady_stddev_ms"] = r.steady_stddev_ms;
    row["recovery_s"] = r.recovery_s;
  }
  table.print(std::cout);
  std::cout << "(expected: very small alpha reacts slowly to the collapse; "
               "very large alpha twitches on noise; the default 0.3 "
               "balances both)\n";
  cli.finish(report);
  return 0;
}
