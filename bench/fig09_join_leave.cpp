// Reproduces Fig. 9: throughput over time as a device joins (left) and
// leaves (right) during computation, under LRS.
//
//   Join:  A runs master/source; B and D compute; G launches Swing mid-run
//          and throughput rises to the full 24 FPS within ~1 s.
//   Leave: B, G, H compute; G is terminated abruptly; throughput dips while
//          the dead route drains, frames are lost during recovery, then it
//          settles at what B + H can deliver (~16 FPS in the paper).
#include "bench/bench_util.h"
#include "common/ascii_chart.h"

using namespace swing;
using namespace swing::bench;

namespace {

void print_bins(const apps::Testbed& bed,
                const std::vector<std::size_t>& bins, int event_s,
                const char* label) {
  (void)bed;
  TextTable table({"t (s)", "throughput (FPS)", ""});
  ChartSeries tput{"throughput (FPS)", '*', {}};
  for (std::size_t i = 0; i < bins.size(); ++i) {
    table.row(i, bins[i], int(i) == event_s ? label : "");
    tput.points.emplace_back(double(i), double(bins[i]));
  }
  table.print(std::cout);
  ChartOptions options;
  options.width = 60;
  options.height = 10;
  options.y_min = 0.0;
  options.y_max = 30.0;
  options.x_label = "time (s)";
  std::cout << render_chart({tput}, options);
}

// Depth and duration of the throughput dip after the event at `event_s`.
// Baseline is the mean of the pre-event bins (minus warmup); the dip lasts
// while consecutive post-event bins stay under 90% of that baseline.
struct DipStats {
  double baseline_fps = 0.0;
  double depth_fps = 0.0;
  double duration_s = 0.0;
};

DipStats dip_stats(const std::vector<std::size_t>& bins, int event_s) {
  DipStats out;
  const std::size_t warmup = 2;
  std::size_t n = 0;
  for (std::size_t i = warmup; i < bins.size() && int(i) < event_s; ++i) {
    out.baseline_fps += double(bins[i]);
    ++n;
  }
  if (n > 0) out.baseline_fps /= double(n);
  double lowest = out.baseline_fps;
  for (std::size_t i = std::size_t(event_s); i < bins.size(); ++i) {
    lowest = std::min(lowest, double(bins[i]));
    if (double(bins[i]) < 0.9 * out.baseline_fps) {
      out.duration_s += 1.0;
    } else if (out.duration_s > 0.0) {
      break;  // First recovered bin ends the dip.
    }
  }
  out.depth_fps = out.baseline_fps - lowest;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const int before_s = args.get_int("before", 10);
  const int after_s = args.get_int("after", 15);
  // swing-chaos: --loss=0.2 --chaos-seed=7 runs the same scripts on a lossy
  // medium with the full recovery path (retransmit + dedup + failure
  // detection + local fallback) enabled.
  const double loss = args.get_double("loss", 0.0);
  const int chaos_seed = args.get_int("chaos-seed", 1);
  const BenchCli cli =
      parse_standard(args, "fig09_join_leave", double(before_s + after_s));
  obs::BenchReport report = cli.make_report();
  report.set_config("before_s", std::int64_t(before_s));
  report.set_config("after_s", std::int64_t(after_s));
  report.set_config("loss", loss);
  report.set_config("chaos_seed", std::int64_t(chaos_seed));
  auto apply_chaos = [&](apps::TestbedConfig& config) {
    if (loss <= 0.0) return;
    config.swarm.chaos_enabled = true;
    config.swarm.chaos.seed = std::uint64_t(chaos_seed);
    config.swarm.chaos.loss = loss;
    config.swarm.with_recovery();
  };
  auto add_rows = [&report](const char* scenario,
                            const std::vector<std::size_t>& bins) {
    for (std::size_t i = 0; i < bins.size(); ++i) {
      obs::Json& row = report.add_result();
      row["scenario"] = scenario;
      row["t_s"] = std::uint64_t(i);
      row["throughput_fps"] = std::uint64_t(bins[i]);
    }
  };

  std::cout << "=== Fig 9 (left): device G joins at t=" << before_s
            << "s ===\n";
  {
    apps::TestbedConfig config;
    config.workers = {"B", "D", "G"};
    config.weak_signal_bcd = false;
    config.seed = cli.seed;
    apply_chaos(config);
    apps::Testbed bed{config};
    auto& swarm = bed.swarm();
    swarm.launch_master(bed.id("A"), apps::face_recognition_graph());
    swarm.launch_worker(bed.id("B"));
    swarm.launch_worker(bed.id("D"));
    bed.sim().run_for(seconds(1));
    swarm.start();
    const SimTime t0 = bed.sim().now();
    bed.run(seconds(double(before_s)));
    swarm.launch_worker(bed.id("G"));
    bed.run(seconds(double(after_s)));
    const auto bins = swarm.metrics().throughput_bins(t0, bed.sim().now());
    add_rows("join", bins);
    print_bins(bed, bins, before_s, "<- G joins");
    std::cout << "(paper: rises to 24 FPS within a second of G's arrival; "
                 "no data lost)\n\n";
  }

  std::cout << "=== Fig 9 (right): device G leaves abruptly at t="
            << before_s << "s ===\n";
  {
    apps::TestbedConfig config;
    config.workers = {"B", "G", "H"};
    config.weak_signal_bcd = false;
    config.seed = cli.seed;
    apply_chaos(config);
    apps::Testbed bed{config};
    bed.launch(apps::face_recognition_graph());
    auto& swarm = bed.swarm();
    const SimTime t0 = bed.sim().now();
    bed.run(seconds(double(before_s)));
    const auto sent_before = swarm.metrics().frames_arrived();
    swarm.leave_abruptly(bed.id("G"));
    // Step the sim so we can time the master's eviction of the dead
    // device (heartbeat sweep, or the faster ack-silence link reports).
    const SimTime leave_at = bed.sim().now();
    double evict_s = -1.0;
    while ((bed.sim().now() - leave_at).seconds() < double(after_s)) {
      bed.run(millis(100));
      if (evict_s < 0.0 && !swarm.master()->is_member(bed.id("G"))) {
        evict_s = (bed.sim().now() - leave_at).seconds();
      }
    }
    const auto bins = swarm.metrics().throughput_bins(t0, bed.sim().now());
    add_rows("leave", bins);
    print_bins(bed, bins, before_s, "<- G leaves");
    // Recovery stats (swing-chaos): how hard the departure hit the sink
    // and how fast the control plane noticed.
    const DipStats dip = dip_stats(bins, before_s);
    const auto frames = swarm.metrics().frames_arrived();
    const double retransmit_rate =
        frames > 0 ? double(swarm.metrics().retransmissions()) / double(frames)
                   : 0.0;
    report.set_summary("time_to_evict_s", evict_s);
    report.set_summary("retransmissions",
                       std::uint64_t(swarm.metrics().retransmissions()));
    report.set_summary("retransmit_rate", retransmit_rate);
    report.set_summary("fps_dip_depth", dip.depth_fps);
    report.set_summary("fps_dip_duration_s", dip.duration_s);
    std::cout << "time to evict: "
              << (evict_s < 0.0 ? std::string("(not evicted)")
                                : fmt(evict_s, 1) + " s")
              << "; fps dip depth " << fmt(dip.depth_fps, 1) << " for "
              << fmt(dip.duration_s, 0) << " s; retransmit rate "
              << fmt(retransmit_rate, 3) << "\n";
    const auto source_total =
        swarm.metrics().frames_arrived() - sent_before;
    const auto expected = std::size_t(24 * after_s);
    const auto lost = expected > source_total ? expected - source_total : 0;
    std::cout << "frames lost around the departure: ~" << lost
              << " (paper: 13; recovery to ~16 FPS within one second)\n";
    report.set_summary("leave_frames_lost", std::uint64_t(lost));
  }
  cli.finish(report);
  return 0;
}
