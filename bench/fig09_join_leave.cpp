// Reproduces Fig. 9: throughput over time as a device joins (left) and
// leaves (right) during computation, under LRS.
//
//   Join:  A runs master/source; B and D compute; G launches Swing mid-run
//          and throughput rises to the full 24 FPS within ~1 s.
//   Leave: B, G, H compute; G is terminated abruptly; throughput dips while
//          the dead route drains, frames are lost during recovery, then it
//          settles at what B + H can deliver (~16 FPS in the paper).
#include "bench/bench_util.h"
#include "common/ascii_chart.h"

using namespace swing;
using namespace swing::bench;

namespace {

void print_bins(const apps::Testbed& bed,
                const std::vector<std::size_t>& bins, int event_s,
                const char* label) {
  (void)bed;
  TextTable table({"t (s)", "throughput (FPS)", ""});
  ChartSeries tput{"throughput (FPS)", '*', {}};
  for (std::size_t i = 0; i < bins.size(); ++i) {
    table.row(i, bins[i], int(i) == event_s ? label : "");
    tput.points.emplace_back(double(i), double(bins[i]));
  }
  table.print(std::cout);
  ChartOptions options;
  options.width = 60;
  options.height = 10;
  options.y_min = 0.0;
  options.y_max = 30.0;
  options.x_label = "time (s)";
  std::cout << render_chart({tput}, options);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const int before_s = args.get_int("before", 10);
  const int after_s = args.get_int("after", 15);
  const BenchCli cli =
      parse_standard(args, "fig09_join_leave", double(before_s + after_s));
  obs::BenchReport report = cli.make_report();
  report.set_config("before_s", std::int64_t(before_s));
  report.set_config("after_s", std::int64_t(after_s));
  auto add_rows = [&report](const char* scenario,
                            const std::vector<std::size_t>& bins) {
    for (std::size_t i = 0; i < bins.size(); ++i) {
      obs::Json& row = report.add_result();
      row["scenario"] = scenario;
      row["t_s"] = std::uint64_t(i);
      row["throughput_fps"] = std::uint64_t(bins[i]);
    }
  };

  std::cout << "=== Fig 9 (left): device G joins at t=" << before_s
            << "s ===\n";
  {
    apps::TestbedConfig config;
    config.workers = {"B", "D", "G"};
    config.weak_signal_bcd = false;
    config.seed = cli.seed;
    apps::Testbed bed{config};
    auto& swarm = bed.swarm();
    swarm.launch_master(bed.id("A"), apps::face_recognition_graph());
    swarm.launch_worker(bed.id("B"));
    swarm.launch_worker(bed.id("D"));
    bed.sim().run_for(seconds(1));
    swarm.start();
    const SimTime t0 = bed.sim().now();
    bed.run(seconds(double(before_s)));
    swarm.launch_worker(bed.id("G"));
    bed.run(seconds(double(after_s)));
    const auto bins = swarm.metrics().throughput_bins(t0, bed.sim().now());
    add_rows("join", bins);
    print_bins(bed, bins, before_s, "<- G joins");
    std::cout << "(paper: rises to 24 FPS within a second of G's arrival; "
                 "no data lost)\n\n";
  }

  std::cout << "=== Fig 9 (right): device G leaves abruptly at t="
            << before_s << "s ===\n";
  {
    apps::TestbedConfig config;
    config.workers = {"B", "G", "H"};
    config.weak_signal_bcd = false;
    config.seed = cli.seed;
    apps::Testbed bed{config};
    bed.launch(apps::face_recognition_graph());
    auto& swarm = bed.swarm();
    const SimTime t0 = bed.sim().now();
    bed.run(seconds(double(before_s)));
    const auto sent_before = swarm.metrics().frames_arrived();
    swarm.leave_abruptly(bed.id("G"));
    bed.run(seconds(double(after_s)));
    const auto bins = swarm.metrics().throughput_bins(t0, bed.sim().now());
    add_rows("leave", bins);
    print_bins(bed, bins, before_s, "<- G leaves");
    const auto source_total =
        swarm.metrics().frames_arrived() - sent_before;
    const auto expected = std::size_t(24 * after_s);
    const auto lost = expected > source_total ? expected - source_total : 0;
    std::cout << "frames lost around the departure: ~" << lost
              << " (paper: 13; recovery to ~16 FPS within one second)\n";
    report.set_summary("leave_frames_lost", std::uint64_t(lost));
  }
  cli.finish(report);
  return 0;
}
