// Ablation: the per-connection batching service (SEEP batches tuples; the
// paper's serialization service is the analogous hook). On a high-rate
// small-tuple workload — 100 Hz of 200 B sensor readings fanned out for
// processing — batching trades a bounded per-hop hold time for a large
// reduction in radio messages (headers, MAC overhead, ACK count).
#include "bench/bench_util.h"

using namespace swing;
using namespace swing::bench;

namespace {

dataflow::AppGraph sensor_app() {
  dataflow::AppGraph g;
  dataflow::SourceSpec spec;
  spec.rate_per_s = 100.0;
  spec.generate = [](TupleId id, SimTime, Rng&) {
    dataflow::Tuple t;
    t.set("reading", dataflow::Blob{200, id.value()});
    return t;
  };
  const auto src = g.add_source("sensor", std::move(spec));
  const auto work = g.add_transform("analyze", dataflow::passthrough_unit(),
                                    dataflow::constant_cost(8.0));
  const auto snk = g.add_sink("snk");
  g.connect(src, work).connect(work, snk);
  return g;
}

struct Row {
  double fps;
  double mean_ms;
  double messages_per_s;
  double airtime_util;
};

Row run(bool batching, double window_ms, double measure_s,
        std::uint64_t seed) {
  apps::TestbedConfig config;
  config.workers = {"G", "H", "I"};
  config.weak_signal_bcd = false;
  config.swarm.worker.batching.enabled = batching;
  config.swarm.worker.batching.max_delay = millis(window_ms);
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(sensor_app());
  bed.run(seconds(5));
  const SimTime t0 = bed.sim().now();
  const auto msgs0 = bed.swarm().medium().delivered_messages();
  bed.run(seconds(measure_s));

  Row r{};
  r.fps = bed.swarm().metrics().throughput_fps(t0, bed.sim().now());
  r.mean_ms =
      bed.swarm().metrics().latency_stats(t0, bed.sim().now()).mean();
  r.messages_per_s =
      double(bed.swarm().medium().delivered_messages() - msgs0) / measure_s;
  r.airtime_util = bed.swarm().medium().utilisation();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ablate_batching", 30.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Ablation: tuple batching (100 Hz x 200 B sensor "
               "stream over G,H,I) ===\n";
  TextTable table({"batching", "throughput (tuple/s)", "lat mean (ms)",
                   "radio msgs/s", "airtime util"});
  auto add_row = [&report](const std::string& label, double window_ms,
                           const Row& r) {
    obs::Json& row = report.add_result();
    row["batching"] = label;
    row["window_ms"] = window_ms;
    row["throughput_fps"] = r.fps;
    row["latency_mean_ms"] = r.mean_ms;
    row["messages_per_s"] = r.messages_per_s;
    row["airtime_util"] = r.airtime_util;
  };
  const Row off = run(false, 10.0, measure_s, cli.seed);
  table.row("off", off.fps, off.mean_ms, off.messages_per_s,
            off.airtime_util);
  add_row("off", 0.0, off);
  for (double window : {5.0, 10.0, 25.0, 50.0}) {
    const Row r = run(true, window, measure_s, cli.seed);
    table.row("window " + fmt(window, 0) + " ms", r.fps, r.mean_ms,
              r.messages_per_s, r.airtime_util);
    add_row("on", window, r);
  }
  table.print(std::cout);
  std::cout << "(expected: message count falls with the window while "
               "latency grows by about one hold time per hop)\n";
  cli.finish(report);
  return 0;
}
