// Micro-benchmarks of the framework's hot paths (google-benchmark):
// routing decisions, estimator updates, tuple serialization, the event
// queue, the medium, and the reorder buffer. The paper's LRS design
// argument is that per-tuple routing is O(1) ("only requires random number
// generation") — BM_Route quantifies that.
#include <benchmark/benchmark.h>

#include <string_view>

#include "bench/bench_util.h"
#include "core/swarm_manager.h"
#include "dataflow/codec.h"
#include "dataflow/tuple.h"
#include "runtime/messages.h"
#include "net/medium.h"
#include "runtime/reorder.h"
#include "sim/simulator.h"

namespace swing {
namespace {

void BM_RngWeightedPick(benchmark::State& state) {
  Rng rng{1};
  std::vector<double> weights(std::size_t(state.range(0)));
  for (auto& w : weights) w = rng.uniform() + 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.weighted_pick(weights));
  }
}
BENCHMARK(BM_RngWeightedPick)->Arg(4)->Arg(8)->Arg(32);

void BM_Route(benchmark::State& state) {
  core::SwarmManagerConfig config;
  config.policy = core::PolicyKind::kLRS;
  core::SwarmManager manager{config, Rng{1}};
  for (std::uint64_t i = 0; i < std::uint64_t(state.range(0)); ++i) {
    manager.add_downstream(InstanceId{i});
    for (int k = 0; k < 5; ++k) {
      manager.record_ack(InstanceId{i}, 50.0 + double(i) * 10.0, 30.0,
                         SimTime{});
    }
  }
  manager.tick(SimTime{} + seconds(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.route(SimTime{} + seconds(1)));
  }
}
BENCHMARK(BM_Route)->Arg(8)->Arg(64);

void BM_PolicyDecide(benchmark::State& state) {
  const auto policy = core::RoutingPolicy::make(core::PolicyKind::kLRS);
  std::vector<core::DownstreamInfo> downs;
  Rng rng{2};
  for (std::uint64_t i = 0; i < std::uint64_t(state.range(0)); ++i) {
    downs.push_back({InstanceId{i}, 50.0 + rng.uniform() * 400.0,
                     30.0 + rng.uniform() * 200.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->decide(downs, 24.0));
  }
}
BENCHMARK(BM_PolicyDecide)->Arg(8)->Arg(64)->Arg(256);

void BM_EstimatorRecordAck(benchmark::State& state) {
  core::LatencyEstimator est;
  for (std::uint64_t i = 0; i < 8; ++i) est.add_downstream(InstanceId{i});
  std::uint64_t i = 0;
  for (auto _ : state) {
    est.record_ack(InstanceId{i++ % 8}, 75.0, 45.0, SimTime{});
  }
}
BENCHMARK(BM_EstimatorRecordAck);

dataflow::Tuple bench_tuple() {
  dataflow::Tuple t{TupleId{1}, SimTime{}};
  t.set("frame", dataflow::Blob{6000, 42});
  t.set("name", std::string{"alice"});
  t.set("confidence", 0.93);
  return t;
}

// Arena-path encode: after the first frame the arena's buffer is warm, so
// the steady state allocates nothing. This is the sender's per-tuple cost.
void BM_TupleSerialize(benchmark::State& state) {
  const dataflow::Tuple t = bench_tuple();
  SendArena arena;
  for (auto _ : state) {
    ByteWriter& w = arena.begin_frame();
    t.encode(w);
    benchmark::DoNotOptimize(arena.end_frame().data());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_TupleSerialize);

// View-path decode: the reader is a span over the wire bytes, exactly how
// a worker decodes a received frame. This is the receiver's per-tuple cost.
void BM_TupleRoundTrip(benchmark::State& state) {
  dataflow::Tuple t{TupleId{1}, SimTime{}};
  t.set("frame", dataflow::Blob{6000, 42});
  t.set("faces", std::int64_t{2});
  const Bytes wire = dataflow::encode_to_bytes(t);
  for (auto _ : state) {
    ByteReader r{wire};
    benchmark::DoNotOptimize(dataflow::Tuple::decode(r));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_TupleRoundTrip);

// The batched wire plane end to end: encode `n` data messages into one
// pooled DataBatchMsg frame, then dispatch-decode every element from the
// received view — what a worker pair does per batch. items == tuples, so
// tuples/sec lands in the report for the regression gate.
void BM_BatchCodecDispatch(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  runtime::DataMsg data;
  data.src_instance = InstanceId{1};
  data.src_device = DeviceId{2};
  data.dst_instance = InstanceId{3};
  data.sent_ns = 12345;
  data.tuple = bench_tuple();
  data.tuple_wire_size = data.tuple.wire_size();

  SendArena arena;
  runtime::DataBatchMsg batch;  // Reused per cycle, like Worker's batches_.
  for (auto _ : state) {
    batch.clear();
    for (std::int64_t i = 0; i < n; ++i) {
      batch.append_frame([&](ByteWriter& w) { data.encode(w); });
    }
    ByteWriter& w = arena.begin_frame();
    batch.encode(w);
    const auto payload = arena.end_frame();

    // Receiver side: one pass over the frame, no batch materialisation.
    ByteReader r{payload};
    const auto count = r.read_varint();
    for (std::uint64_t i = 0; i < count; ++i) {
      ByteReader frame{r.read_span()};
      benchmark::DoNotOptimize(runtime::DataMsg::decode(frame));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BatchCodecDispatch)->Arg(8)->Arg(64);

void BM_SimulatorScheduleStep(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    sim.schedule_after(millis(1), [] {});
    sim.step();
  }
}
BENCHMARK(BM_SimulatorScheduleStep);

void BM_SimulatorCancel(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    const EventId id = sim.schedule_after(millis(1), [] {});
    sim.cancel(id);
  }
}
BENCHMARK(BM_SimulatorCancel);

void BM_MediumMessage(benchmark::State& state) {
  // Full lifecycle of a 6 kB message over the shared medium.
  Simulator sim;
  net::Medium medium{sim};
  medium.attach(DeviceId{0}, net::Position{1.0, 0.0});
  medium.attach(DeviceId{1}, net::Position{2.0, 0.0});
  for (auto _ : state) {
    medium.send(DeviceId{0}, DeviceId{1}, 6000, [] {});
    sim.run();
  }
}
BENCHMARK(BM_MediumMessage);

void BM_ReorderPush(benchmark::State& state) {
  runtime::ReorderBuffer buf{24, [](const dataflow::Tuple&, SimTime) {}};
  Rng rng{3};
  std::uint64_t id = 0;
  for (auto _ : state) {
    // Bounded scrambling, like real arrivals.
    const std::uint64_t jitter = rng.uniform_int(8);
    buf.push(dataflow::Tuple{TupleId{id + jitter}, SimTime{}}, SimTime{});
    ++id;
  }
}
BENCHMARK(BM_ReorderPush);

// Console output plus a row per benchmark run in the standard report.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(obs::BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      obs::Json& row = report_->add_result();
      row["name"] = run.benchmark_name();
      row["iterations"] = std::uint64_t(run.iterations);
      row["real_time_ns"] = run.GetAdjustedRealTime();
      row["cpu_time_ns"] = run.GetAdjustedCPUTime();
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        row["items_per_second"] = double(items->second);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::BenchReport* report_;
};

}  // namespace
}  // namespace swing

int main(int argc, char** argv) {
  using namespace swing;
  const bench::Args args{argc, argv};
  const bench::BenchCli cli =
      bench::parse_standard(args, "micro_components", 0.0);

  // Strip the standard swing flags before handing argv to google-benchmark
  // (it rejects flags it does not recognise).
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view a{argv[i]};
    if (a.rfind("--seed", 0) == 0 || a.rfind("--duration", 0) == 0 ||
        a.rfind("--seconds", 0) == 0 || a.rfind("--out", 0) == 0) {
      continue;
    }
    filtered.push_back(argv[i]);
  }
  int filtered_argc = int(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             filtered.data())) {
    return 1;
  }

  obs::BenchReport report = cli.make_report();
  CollectingReporter reporter{&report};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  cli.finish(report);
  return 0;
}
