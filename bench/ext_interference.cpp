// Extension study: daytime co-channel interference. The paper ran its
// testbed at night to dodge interference; here a neighbouring network
// steals a duty-cycle of airtime and we watch each policy cope. Latency-
// based routing absorbs interference like any other latency source; the
// P* policies cannot even see it.
#include "bench/bench_util.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Row {
  double fps;
  double mean_ms;
};

Row run(core::PolicyKind policy, double duty, double measure_s,
        std::uint64_t seed) {
  apps::TestbedConfig config;
  config.policy = policy;
  config.swarm.medium.interference.duty = duty;
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));
  const SimTime t0 = bed.sim().now();
  bed.run(seconds(measure_s));
  return {bed.swarm().metrics().throughput_fps(t0, bed.sim().now()),
          bed.swarm().metrics().latency_stats(t0, bed.sim().now()).mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ext_interference", 60.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Extension: co-channel interference (face recognition "
               "testbed) ===\n";
  TextTable table({"policy", "night (0%)", "20% duty", "40% duty",
                   "lat @40% (ms)"});
  for (core::PolicyKind policy :
       {core::PolicyKind::kRR, core::PolicyKind::kPRS,
        core::PolicyKind::kLRS}) {
    auto add_row = [&](double duty, const Row& r) {
      obs::Json& row = report.add_result();
      row["policy"] = core::policy_name(policy);
      row["interference_duty"] = duty;
      row["throughput_fps"] = r.fps;
      row["latency_mean_ms"] = r.mean_ms;
    };
    const Row quiet = run(policy, 0.0, measure_s, cli.seed);
    const Row light = run(policy, 0.2, measure_s, cli.seed);
    const Row heavy = run(policy, 0.4, measure_s, cli.seed);
    add_row(0.0, quiet);
    add_row(0.2, light);
    add_row(0.4, heavy);
    table.row(core::policy_name(policy), quiet.fps, light.fps, heavy.fps,
              heavy.mean_ms);
  }
  table.print(std::cout);
  std::cout << "(expected: interference eats everyone's headroom; LRS "
               "degrades most gracefully because its estimates absorb the "
               "extra channel delay)\n";
  cli.finish(report);
  return 0;
}
