// Reproduces Table I: per-device face-recognition processing delay
// (excluding queuing) and throughput when phone A streams 24 FPS video to
// each device in turn. The paper ran each pairing for 10 minutes (14400
// frames); pass --seconds=600 for the full-length run.
#include "bench/bench_util.h"

using namespace swing;
using namespace swing::bench;

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "table1_heterogeneity", 60.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  struct PaperRow {
    const char* name;
    double delay_ms;
    double fps;
  };
  const PaperRow paper[] = {
      {"B", 92.9, 10}, {"C", 121.6, 8}, {"D", 167.7, 6}, {"E", 463.4, 2},
      {"F", 166.4, 5}, {"G", 82.2, 12}, {"H", 71.3, 13}, {"I", 78.0, 12},
  };

  TextTable table({"device", "model", "proc delay (ms)", "paper (ms)",
                   "throughput (FPS)", "paper (FPS)"});

  for (const auto& row : paper) {
    apps::TestbedConfig config;
    config.workers = {row.name};
    config.seed = cli.seed;
    config.weak_signal_bcd = false;
    apps::Testbed bed{config};
    bed.launch(apps::face_recognition_graph());
    bed.run(seconds(5));  // Warmup.
    const SimTime t0 = bed.sim().now();
    const auto frames_before = bed.swarm().metrics().frames_arrived();
    bed.run(seconds(measure_s));

    // Processing component only (the paper's Table I excludes queuing).
    OnlineStats processing;
    for (const auto& f : bed.swarm().metrics().frames()) {
      if (f.arrival >= t0) processing.add(f.breakdown.processing_ms);
    }
    const double fps =
        double(bed.swarm().metrics().frames_arrived() - frames_before) /
        measure_s;
    table.row(row.name, device::profile_by_name(row.name).model,
              processing.mean(), row.delay_ms, fps, row.fps);

    obs::Json& out_row = report.add_result();
    out_row["device"] = row.name;
    out_row["model"] = device::profile_by_name(row.name).model;
    out_row["processing_ms"] = processing.mean();
    out_row["throughput_fps"] = fps;
    out_row["paper_processing_ms"] = row.delay_ms;
    out_row["paper_throughput_fps"] = row.fps;
  }

  std::cout << "=== Table I: performance heterogeneity (24 FPS offered) ===\n";
  if (args.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  cli.finish(report);
  return 0;
}
