// Ablation: probabilistic routing (the paper's O(1) weighted coin flip)
// vs deterministic smooth weighted round-robin. The paper argues
// probabilistic routing is cheap and good enough; this quantifies what the
// determinism would buy (lower split variance -> less reordering) and what
// it costs (nothing material at swarm scale).
#include "bench/bench_util.h"
#include "core/swarm_manager.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Row {
  double fps;
  double mean_ms;
  double stddev_ms;
  double inversions_pct;
};

Row run(core::RoutingMode mode, double measure_s, std::uint64_t seed) {
  apps::TestbedConfig config;
  config.swarm.worker.manager.routing_mode = mode;
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));
  const SimTime t0 = bed.sim().now();
  bed.run(seconds(measure_s));
  const SimTime t1 = bed.sim().now();

  Row r{};
  r.fps = bed.swarm().metrics().throughput_fps(t0, t1);
  const auto stats = bed.swarm().metrics().latency_stats(t0, t1);
  r.mean_ms = stats.mean();
  r.stddev_ms = stats.stddev();

  std::size_t inversions = 0, n = 0;
  double prev = -1.0;
  for (const auto& p : bed.swarm().metrics().arrivals().points()) {
    if (p.time < t0) continue;
    if (prev >= 0.0 && p.value < prev) ++inversions;
    prev = p.value;
    ++n;
  }
  r.inversions_pct = n > 1 ? 100.0 * double(inversions) / double(n - 1) : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ablate_routing", 60.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Ablation: per-tuple routing mechanism (LRS, face "
               "recognition testbed) ===\n";
  TextTable table({"mode", "throughput (FPS)", "lat mean (ms)",
                   "lat stddev (ms)", "arrival inversions (%)"});
  auto add_row = [&](const char* mode, const Row& r) {
    table.row(mode, r.fps, r.mean_ms, r.stddev_ms, r.inversions_pct);
    obs::Json& row = report.add_result();
    row["mode"] = mode;
    row["throughput_fps"] = r.fps;
    row["latency_mean_ms"] = r.mean_ms;
    row["latency_stddev_ms"] = r.stddev_ms;
    row["inversions_pct"] = r.inversions_pct;
  };
  add_row("probabilistic (paper)",
          run(core::RoutingMode::kProbabilistic, measure_s, cli.seed));
  add_row("deterministic SWRR",
          run(core::RoutingMode::kDeterministic, measure_s, cli.seed));
  table.print(std::cout);
  std::cout << "(expected: deterministic slightly smoother ordering, same "
               "throughput — the paper's cheap choice loses little)\n";
  cli.finish(report);
  return 0;
}
