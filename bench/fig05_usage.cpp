// Reproduces Fig. 5: per-device CPU utilisation and input data rate under
// each routing policy, for both apps.
//
// Paper shape: RR splits input equally; P* policies prefer fast processors
// (including weak-signal B); L* policies avoid the weak-signal devices
// (B, C, D); *S policies concentrate on a selected subset; weak processors
// (E) burn a larger CPU share for the same input.
#include "bench/bench_util.h"

using namespace swing;
using namespace swing::bench;

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "fig05_usage", 120.0);
  const double measure_s = cli.duration_s;
  const bool csv = args.has("csv");
  obs::BenchReport report = cli.make_report();

  for (App app : {App::kFaceRecognition, App::kVoiceTranslation}) {
    std::cout << "=== Fig 5: " << app_name(app)
              << " — CPU usage (%) per device ===\n";
    TextTable cpu({"policy", "B", "C", "D", "E", "F", "G", "H", "I"});
    TextTable rate({"policy", "B", "C", "D", "E", "F", "G", "H", "I"});
    for (core::PolicyKind policy : core::kAllPolicies) {
      const auto r =
          run_policy_experiment(app, policy, measure_s, 10.0, cli.seed);
      std::vector<std::string> cpu_row = {core::policy_name(policy)};
      std::vector<std::string> rate_row = {core::policy_name(policy)};
      for (const auto& [name, d] : r.devices) {
        cpu_row.push_back(fmt(100.0 * d.cpu_util, 0));
        rate_row.push_back(fmt(d.input_fps, 1));

        obs::Json& row = report.add_result();
        row["app"] = app_name(app);
        row["policy"] = core::policy_name(policy);
        row["device"] = name;
        row["cpu_util"] = d.cpu_util;
        row["input_fps"] = d.input_fps;
        row["input_kbps"] = d.input_kbps;
      }
      cpu.add_row(std::move(cpu_row));
      rate.add_row(std::move(rate_row));
    }
    if (csv) {
      cpu.print_csv(std::cout);
    } else {
      cpu.print(std::cout);
    }
    std::cout << "--- input rate from source (FPS) per device ---\n";
    if (csv) {
      rate.print_csv(std::cout);
    } else {
      rate.print(std::cout);
    }
    std::cout << '\n';
  }
  std::cout << "(paper: RR equal split; L* avoid weak-signal B/C/D; *S "
               "select a subset; E burns more CPU per frame)\n";
  cli.finish(report);
  return 0;
}
