// Ablation: probe cadence. The paper refreshes estimates of unselected
// downstreams by "switching periodically every few rounds to round robin
// mode for a short time". Probing costs throughput/latency in steady state
// (probe tuples traverse slow paths) but buys reaction speed when a
// previously-bad device becomes good again. Sweeps the probe period.
#include "bench/bench_util.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Row {
  double steady_fps;
  double steady_mean_ms;
  double steady_max_ms;
  double rediscovery_s;  // Until a recovered device carries load again.
};

Row run(int probe_every_ticks, double measure_s, std::uint64_t seed) {
  apps::TestbedConfig config;
  config.workers = {"G", "H"};
  config.weak_signal_bcd = false;
  config.swarm.worker.manager.probe_every_ticks = probe_every_ticks;
  config.seed = seed;
  apps::Testbed bed{config};
  // 12 FPS is feasible for H alone, so worker selection legitimately
  // *excludes* G while it is in the dead zone — after G heals, probes are
  // the only way LRS can ever find out.
  apps::FaceRecognitionConfig app;
  app.fps = 12.0;
  bed.launch(apps::face_recognition_graph(app));

  // G starts in a dead zone; LRS learns to avoid it.
  bed.swarm().walker(bed.id("G")).jump_to_rssi(-78.0);
  bed.run(seconds(15));
  const SimTime t0 = bed.sim().now();
  bed.run(seconds(measure_s));

  Row r{};
  const SimTime t1 = bed.sim().now();
  r.steady_fps = bed.swarm().metrics().throughput_fps(t0, t1);
  const auto stats = bed.swarm().metrics().latency_stats(t0, t1);
  r.steady_mean_ms = stats.mean();
  r.steady_max_ms = stats.max();

  // G walks back into good signal; how long until it carries real load?
  bed.swarm().walker(bed.id("G")).jump_to_rssi(-35.0);
  const SimTime recovered_at = bed.sim().now();
  const auto g = bed.id("G");
  auto frames_g = [&] {
    return bed.swarm().metrics().device(g).frames_from_source;
  };
  const auto base = frames_g();
  r.rediscovery_s = 60.0;
  for (int s = 1; s <= 60; ++s) {
    bed.run(seconds(1));
    if (frames_g() > base + 10) {
      r.rediscovery_s = (bed.sim().now() - recovered_at).seconds();
      break;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ablate_probing", 40.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Ablation: probe cadence (LRS; G,H,I with G in a dead "
               "zone that later heals) ===\n";
  TextTable table({"probe every N ticks", "steady FPS", "lat mean (ms)",
                   "lat max (ms)", "rediscovery (s)"});
  for (int n : {0, 2, 5, 10, 20}) {
    const Row r = run(n, measure_s, cli.seed);
    table.row(n == 0 ? std::string("never") : std::to_string(n),
              r.steady_fps, r.steady_mean_ms, r.steady_max_ms,
              r.rediscovery_s);

    obs::Json& row = report.add_result();
    row["probe_every_ticks"] = std::int64_t(n);
    row["steady_fps"] = r.steady_fps;
    row["latency_mean_ms"] = r.steady_mean_ms;
    row["latency_max_ms"] = r.steady_max_ms;
    row["rediscovery_s"] = r.rediscovery_s;
  }
  table.print(std::cout);
  std::cout << "(expected: frequent probing inflates max latency via probe "
               "tuples on the bad link; no probing never rediscovers G — "
               "the paper's 'every few rounds' is the compromise)\n";
  cli.finish(report);
  return 0;
}
