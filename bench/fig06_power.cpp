// Reproduces Fig. 6: estimated CPU and Wi-Fi power per device and aggregate
// power per policy, for both apps, using the paper's utilisation-based
// power-modelling methodology (§VI-B2).
//
// Paper shape: CPU power dominates Wi-Fi; slow devices (E) burn
// disproportionate power when loaded; PRS draws the least aggregate power
// (fastest, most efficient devices); LRS draws the most (it will use
// well-connected but less efficient devices to hold latency down).
#include "bench/bench_util.h"
#include "common/ascii_chart.h"

using namespace swing;
using namespace swing::bench;

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "fig06_power", 120.0);
  const double measure_s = cli.duration_s;
  const bool csv = args.has("csv");
  obs::BenchReport report = cli.make_report();

  for (App app : {App::kFaceRecognition, App::kVoiceTranslation}) {
    std::cout << "=== Fig 6: " << app_name(app)
              << " — per-device power (W, CPU+WiFi) ===\n";
    TextTable table({"policy", "B", "C", "D", "E", "F", "G", "H", "I",
                     "aggregate (W)"});
    std::vector<std::pair<std::string, double>> bars;
    TextTable split({"policy", "CPU (W)", "WiFi (W)"});
    for (core::PolicyKind policy : core::kAllPolicies) {
      // One run per policy feeds both tables (the original ran each policy
      // twice for the split table; the numbers are identical by seed).
      const auto r =
          run_policy_experiment(app, policy, measure_s, 10.0, cli.seed);
      std::vector<std::string> row = {core::policy_name(policy)};
      double cpu = 0.0, wifi = 0.0;
      for (const auto& [name, d] : r.devices) {
        row.push_back(fmt(d.cpu_power_w + d.wifi_power_w, 2));
        cpu += d.cpu_power_w;
        wifi += d.wifi_power_w;
      }
      row.push_back(fmt(r.aggregate_power_w(), 2));
      table.add_row(std::move(row));
      bars.emplace_back(core::policy_name(policy), r.aggregate_power_w());
      split.row(core::policy_name(policy), cpu, wifi);

      obs::Json& out = report.add_result();
      out["app"] = app_name(app);
      out["policy"] = core::policy_name(policy);
      out["aggregate_w"] = r.aggregate_power_w();
      out["cpu_w"] = cpu;
      out["wifi_w"] = wifi;
    }
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
      std::cout << render_bars(bars, 40, "W");
    }
    std::cout << "--- CPU / WiFi split per policy ---\n";
    if (csv) {
      split.print_csv(std::cout);
    } else {
      split.print(std::cout);
    }
    std::cout << '\n';
  }
  std::cout << "(paper aggregates, FR: RR 2.35 PR 2.45 LR 3.44 PRS 1.88 "
               "LRS 3.67 W; VT: RR 5.44 PR 4.60 LR 4.35 PRS 3.76 LRS "
               "5.17 W)\n";
  cli.finish(report);
  return 0;
}
