// Reproduces Fig. 4: system throughput and per-frame latency
// (min / max / mean / variance) for RR, PR, LR, PRS and LRS on both apps,
// on the 9-device testbed with B, C, D at weak signal.
//
// Paper shape: LRS meets the 24 FPS target and has the lowest mean latency
// and variance; RR collapses to a fraction of the target (the paper reports
// LRS at 2.7x RR throughput and 6.7x lower mean latency); PR/PRS miss the
// rate because they keep routing to weak-signal devices.
#include "bench/bench_util.h"
#include "common/ascii_chart.h"

using namespace swing;
using namespace swing::bench;

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "fig04_policies", 120.0);
  const bool csv = args.has("csv");

  obs::BenchReport report = cli.make_report();

  for (App app : {App::kFaceRecognition, App::kVoiceTranslation}) {
    std::cout << "=== Fig 4: " << app_name(app) << " ===\n";
    TextTable table({"policy", "throughput (FPS)", "lat min (ms)",
                     "lat max (ms)", "lat mean (ms)", "lat stddev (ms)"});
    std::vector<std::pair<std::string, double>> fps_bars;
    std::vector<std::pair<std::string, double>> lat_bars;
    double rr_fps = 0.0, rr_lat = 0.0, lrs_fps = 0.0, lrs_lat = 0.0;
    for (core::PolicyKind policy : core::kAllPolicies) {
      const auto r =
          run_policy_experiment(app, policy, cli.duration_s, 10.0, cli.seed);
      table.row(core::policy_name(policy), r.throughput_fps,
                r.latency_ms.min(), r.latency_ms.max(), r.latency_ms.mean(),
                r.latency_ms.stddev());
      fps_bars.emplace_back(core::policy_name(policy), r.throughput_fps);
      lat_bars.emplace_back(core::policy_name(policy), r.latency_ms.mean());

      obs::Json& row = report.add_result();
      row["app"] = app_name(app);
      row["policy"] = core::policy_name(policy);
      row["throughput_fps"] = r.throughput_fps;
      obs::BenchReport::add_stats(row, "latency_ms", r.latency_ms);

      if (policy == core::PolicyKind::kRR) {
        rr_fps = r.throughput_fps;
        rr_lat = r.latency_ms.mean();
      }
      if (policy == core::PolicyKind::kLRS) {
        lrs_fps = r.throughput_fps;
        lrs_lat = r.latency_ms.mean();
      }
    }
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
      std::cout << "throughput (FPS):\n" << render_bars(fps_bars, 40, "FPS");
      std::cout << "mean latency (ms):\n" << render_bars(lat_bars, 40, "ms");
    }
    if (rr_fps > 0.0 && lrs_lat > 0.0) {
      std::cout << "LRS vs RR: " << fmt(lrs_fps / rr_fps, 2)
                << "x throughput, " << fmt(rr_lat / lrs_lat, 2)
                << "x lower mean latency (paper: 2.7x, 6.7x)\n";
      const std::string prefix =
          app == App::kFaceRecognition ? "face" : "voice";
      report.set_summary(prefix + "_lrs_vs_rr_throughput",
                         lrs_fps / rr_fps);
      report.set_summary(prefix + "_rr_vs_lrs_mean_latency",
                         rr_lat / lrs_lat);
    }
    std::cout << '\n';
  }
  cli.finish(report);
  return 0;
}
