// Ablation: sink reorder-buffer span. The paper sizes the buffer to one
// second of source data (24 tuples): "a large buffer ensures better
// ordering but delays the display of the results". Sweeps the span and
// measures exactly that trade-off.
#include "bench/bench_util.h"
#include "runtime/reorder.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Row {
  std::size_t capacity;
  std::uint64_t late_drops;
  double added_display_delay_ms;  // display - arrival, mean.
  double playback_gap_stddev_ms;
};

Row run(double span_s, double measure_s, std::uint64_t seed) {
  apps::TestbedConfig config;
  config.swarm.worker.reorder_span = seconds(span_s);
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));
  const SimTime t0 = bed.sim().now();
  bed.run(seconds(measure_s));

  Row r{};
  const auto* reorder = bed.swarm().worker(bed.id("A"))->reorder_of(
      bed.swarm().graph().sinks()[0]);
  r.capacity = reorder != nullptr ? reorder->capacity() : 0;
  r.late_drops = reorder != nullptr ? reorder->late_drops() : 0;

  OnlineStats added;
  for (const auto& f : bed.swarm().metrics().frames()) {
    if (f.arrival >= t0 && f.displayed) {
      added.add((f.display - f.arrival).millis());
    }
  }
  r.added_display_delay_ms = added.mean();

  OnlineStats gaps;
  SimTime prev{};
  bool first = true;
  for (const auto& p : bed.swarm().metrics().plays().points()) {
    if (p.time < t0) continue;
    if (!first) gaps.add((p.time - prev).millis());
    prev = p.time;
    first = false;
  }
  r.playback_gap_stddev_ms = gaps.stddev();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ablate_reorder", 60.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Ablation: reorder-buffer span (LRS, face recognition "
               "testbed, 24 FPS) ===\n";
  TextTable table({"span (s)", "capacity (tuples)", "late drops",
                   "added display delay (ms)", "playback gap stddev (ms)"});
  for (double span : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const Row r = run(span, measure_s, cli.seed);
    table.row(span, r.capacity, r.late_drops, r.added_display_delay_ms,
              r.playback_gap_stddev_ms);

    obs::Json& row = report.add_result();
    row["span_s"] = span;
    row["capacity_tuples"] = std::uint64_t(r.capacity);
    row["late_drops"] = r.late_drops;
    row["added_display_delay_ms"] = r.added_display_delay_ms;
    row["playback_gap_stddev_ms"] = r.playback_gap_stddev_ms;
  }
  table.print(std::cout);
  std::cout << "(expected: tiny buffers drop late tuples; big buffers add "
               "display delay; the paper's 1 s span sits at the knee)\n";
  cli.finish(report);
  return 0;
}
