// Ablation: worker-selection headroom. The paper selects the *minimum*
// prefix with sum(mu) >= Lambda; with noisy estimates that minimum set can
// sit right at the capacity edge and oscillate. Headroom h scales the
// constraint to sum(mu) >= h*Lambda, trading energy (more devices awake)
// for latency slack and stability.
#include "bench/bench_util.h"
#include "core/swarm_manager.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Row {
  double fps;
  double mean_ms;
  double p95_ms;
  double mean_selected;
  int selection_changes;
  double aggregate_w;
};

Row run(double headroom, double measure_s, std::uint64_t seed) {
  apps::TestbedConfig config;
  config.swarm.worker.manager.policy_options.selection_headroom = headroom;
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));
  const SimTime t0 = bed.sim().now();

  std::vector<runtime::Swarm::EnergySnapshot> before;
  for (const auto& name : bed.worker_names()) {
    before.push_back(bed.swarm().energy_snapshot(bed.id(name)));
  }

  // Sample the source manager's selection once a second.
  const auto* manager = bed.swarm().worker(bed.id("A"))->manager_of(
      bed.swarm().graph().sources()[0]);
  double selected_sum = 0.0;
  int samples = 0;
  int changes = 0;
  std::vector<InstanceId> prev;
  for (int s = 0; s < int(measure_s); ++s) {
    bed.run(seconds(1));
    auto cur = manager->decision().selected;
    std::sort(cur.begin(), cur.end());
    selected_sum += double(cur.size());
    ++samples;
    if (!prev.empty() && cur != prev) ++changes;
    prev = std::move(cur);
  }

  Row r{};
  const SimTime t1 = bed.sim().now();
  r.fps = bed.swarm().metrics().throughput_fps(t0, t1);
  const auto stats = bed.swarm().metrics().latency_stats(t0, t1);
  r.mean_ms = stats.mean();
  r.p95_ms = stats.quantile(0.95);
  r.mean_selected = selected_sum / double(samples);
  r.selection_changes = changes;
  double watts = 0.0;
  for (std::size_t i = 0; i < bed.worker_names().size(); ++i) {
    const auto after =
        bed.swarm().energy_snapshot(bed.id(bed.worker_names()[i]));
    watts += runtime::Swarm::power_between(before[i], after).total_w();
  }
  r.aggregate_w = watts;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ablate_selection", 60.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Ablation: worker-selection headroom (LRS, face "
               "recognition testbed) ===\n";
  TextTable table({"headroom", "FPS", "lat mean (ms)", "lat p95 (ms)",
                   "mean #selected", "selection changes", "power (W)"});
  for (double h : {1.0, 1.2, 1.5, 2.0, 3.0}) {
    const Row r = run(h, measure_s, cli.seed);
    table.row(h, r.fps, r.mean_ms, r.p95_ms, r.mean_selected,
              r.selection_changes, r.aggregate_w);

    obs::Json& row = report.add_result();
    row["headroom"] = h;
    row["throughput_fps"] = r.fps;
    row["latency_mean_ms"] = r.mean_ms;
    row["latency_p95_ms"] = r.p95_ms;
    row["mean_selected"] = r.mean_selected;
    row["selection_changes"] = std::int64_t(r.selection_changes);
    row["aggregate_w"] = r.aggregate_w;
  }
  table.print(std::cout);
  std::cout << "(expected: more headroom -> more devices selected, more "
               "power, lower tail latency, fewer oscillations; the paper's "
               "h=1 is the energy-optimal edge)\n";
  cli.finish(report);
  return 0;
}
