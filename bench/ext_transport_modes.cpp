// Extension study: infrastructure WLAN vs Wi-Fi Direct (ad-hoc) transport
// (paper §II lists both as supported networking technologies). Direct
// links halve per-message airtime — for the channel-hungry voice
// translation app that headroom translates into throughput and latency.
#include "bench/bench_util.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Row {
  double fps;
  double mean_ms;
  double channel_util;
};

Row run(App app, net::MediumMode mode, double measure_s,
        std::uint64_t seed) {
  apps::TestbedConfig config;
  config.swarm.medium.mode = mode;
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(make_app_graph(app));
  bed.run(seconds(10));
  const SimTime t0 = bed.sim().now();
  bed.run(seconds(measure_s));
  Row r{};
  r.fps = bed.swarm().metrics().throughput_fps(t0, bed.sim().now());
  r.mean_ms =
      bed.swarm().metrics().latency_stats(t0, bed.sim().now()).mean();
  r.channel_util = bed.swarm().medium().utilisation();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ext_transport_modes", 60.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Extension: transport mode (LRS, 9-device testbed) ===\n";
  for (App app : {App::kFaceRecognition, App::kVoiceTranslation}) {
    TextTable table({"mode", "throughput (FPS)", "lat mean (ms)",
                     "channel utilisation"});
    auto add_row = [&](const char* mode, const Row& r) {
      obs::Json& row = report.add_result();
      row["app"] = app_name(app);
      row["mode"] = mode;
      row["throughput_fps"] = r.fps;
      row["latency_mean_ms"] = r.mean_ms;
      row["channel_util"] = r.channel_util;
    };
    const Row infra =
        run(app, net::MediumMode::kInfrastructure, measure_s, cli.seed);
    const Row adhoc =
        run(app, net::MediumMode::kAdhoc, measure_s, cli.seed);
    std::cout << "--- " << app_name(app) << " ---\n";
    table.row("infrastructure (AP)", infra.fps, infra.mean_ms,
              infra.channel_util);
    table.row("Wi-Fi Direct", adhoc.fps, adhoc.mean_ms, adhoc.channel_util);
    add_row("infrastructure", infra);
    add_row("wifi-direct", adhoc);
    table.print(std::cout);
  }
  std::cout << "(direct links skip the AP relay: half the airtime per "
               "message, which matters most for the 72 kB voice frames)\n";
  cli.finish(report);
  return 0;
}
