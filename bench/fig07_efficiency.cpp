// Reproduces Fig. 7: energy efficiency (FPS per Watt) of every routing
// policy — throughput from Fig. 4 divided by aggregate power from Fig. 6.
//
// Paper shape: worker selection (*S) greatly improves efficiency; LRS wins
// for face recognition and is slightly below PRS for voice translation,
// while being the only policy that always meets the real-time rate.
#include "bench/bench_util.h"
#include "common/ascii_chart.h"

using namespace swing;
using namespace swing::bench;

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "fig07_efficiency", 120.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  for (App app : {App::kFaceRecognition, App::kVoiceTranslation}) {
    std::cout << "=== Fig 7: " << app_name(app) << " — FPS per Watt ===\n";
    TextTable table(
        {"policy", "throughput (FPS)", "power (W)", "FPS/Watt"});
    std::vector<std::pair<std::string, double>> bars;
    for (core::PolicyKind policy : core::kAllPolicies) {
      const auto r =
          run_policy_experiment(app, policy, measure_s, 10.0, cli.seed);
      const double watts = r.aggregate_power_w();
      const double efficiency =
          watts > 0.0 ? r.throughput_fps / watts : 0.0;
      table.row(core::policy_name(policy), r.throughput_fps, watts,
                efficiency);
      bars.emplace_back(core::policy_name(policy), efficiency);

      obs::Json& row = report.add_result();
      row["app"] = app_name(app);
      row["policy"] = core::policy_name(policy);
      row["throughput_fps"] = r.throughput_fps;
      row["power_w"] = watts;
      row["fps_per_watt"] = efficiency;
    }
    if (args.has("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
      std::cout << render_bars(bars, 40, "FPS/W");
    }
    std::cout << '\n';
  }
  cli.finish(report);
  return 0;
}
