// Extension study: battery-aware routing (ELRS) vs the paper's LRS when
// batteries actually run down. LRS happily burns the fastest devices flat;
// ELRS shifts load toward fuller batteries and spares nearly-empty peers,
// extending how long the swarm can keep the stream alive.
//
// Batteries are scaled down (~phone battery / 400) so depletion happens in
// simulated minutes instead of hours.
#include "bench/bench_util.h"
#include <set>

#include "device/device.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Row {
  double fps_first_minute;
  double first_death_s;   // When the first worker battery hits empty.
  double swarm_dead_s;    // When throughput first drops below 1/3 target.
  double min_battery_end;
};

Row run(core::PolicyKind policy, double horizon_s, std::uint64_t seed) {
  apps::TestbedConfig config;
  config.policy = policy;
  config.workers = {"F", "G", "H", "I"};
  config.weak_signal_bcd = false;
  config.seed = seed;
  // Shrink batteries so depletion happens within the experiment; the
  // devices report these real (scaled) levels in their ACKs, which is what
  // ELRS acts on.
  config.profile_tweak = [](device::DeviceProfile& p) {
    p.battery_wh /= 400.0;
  };
  apps::Testbed bed{config};

  std::vector<DeviceId> workers;
  for (const auto& name : config.workers) workers.push_back(bed.id(name));

  bed.launch(apps::face_recognition_graph());
  const SimTime t0 = bed.sim().now();

  Row r{};
  r.first_death_s = horizon_s;
  r.swarm_dead_s = horizon_s;
  std::set<std::uint64_t> dead;
  std::size_t prev_frames = 0;
  for (int s = 1; s <= int(horizon_s); ++s) {
    bed.run(seconds(1));
    double min_battery = 1.0;
    for (DeviceId id : workers) {
      if (dead.contains(id.value())) continue;
      const double remaining =
          bed.swarm().device(id).battery_fraction(bed.sim().now());
      min_battery = std::min(min_battery, remaining);
      if (remaining <= 0.0) {
        if (dead.empty()) {
          r.first_death_s = (bed.sim().now() - t0).seconds();
        }
        dead.insert(id.value());
        // A dead battery means the device drops off the network.
        bed.swarm().leave_abruptly(id);
      }
    }
    const auto frames = bed.swarm().metrics().frames_arrived();
    const double fps = double(frames - prev_frames);
    prev_frames = frames;
    if (s <= 60) r.fps_first_minute += fps / 60.0;
    if (fps < 8.0 && r.swarm_dead_s >= horizon_s && s > 5) {
      r.swarm_dead_s = double(s);
    }
    r.min_battery_end = min_battery;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ext_energy_aware", 240.0);
  const double horizon_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Extension: battery-aware routing (F,G,H,I with scaled "
               "batteries, FR @ 24 FPS) ===\n";
  TextTable table({"policy", "FPS (first min)", "first battery death (s)",
                   "stream below 8 FPS at (s)"});
  for (core::PolicyKind policy :
       {core::PolicyKind::kLRS, core::PolicyKind::kELRS}) {
    const Row r = run(policy, horizon_s, cli.seed);
    table.row(core::policy_name(policy), r.fps_first_minute,
              r.first_death_s, r.swarm_dead_s);

    obs::Json& row = report.add_result();
    row["policy"] = core::policy_name(policy);
    row["fps_first_minute"] = r.fps_first_minute;
    row["first_death_s"] = r.first_death_s;
    row["swarm_dead_s"] = r.swarm_dead_s;
    row["min_battery_end"] = r.min_battery_end;
  }
  table.print(std::cout);
  std::cout << "(expected: ELRS postpones the first battery death "
               "substantially at equal early throughput; total swarm "
               "energy bounds the final collapse either way)\n";
  cli.finish(report);
  return 0;
}
