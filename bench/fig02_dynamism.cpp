// Reproduces Fig. 2: decomposition of remote face-recognition delays under
// three kinds of dynamism, with A streaming to B:
//   (1) Wi-Fi signal strength (Good / Fair / Bad) -> transmission delay
//   (2) background CPU usage on B (20% / 60% / 100%) -> processing delay
//   (3) input rate (5 / 10 / 20 FPS) -> queuing delay
#include "bench/bench_util.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Breakdown {
  double transmission = 0.0;
  double processing = 0.0;
  double queuing = 0.0;
};

// swing-chaos knobs threaded from the CLI: loss > 0 turns on the seeded
// fault plan and the full recovery path for every sweep point.
struct ChaosKnobs {
  double loss = 0.0;
  std::uint64_t seed = 1;
  // Recovery traffic accumulated across every run_pair call.
  std::uint64_t retransmissions = 0;
  std::uint64_t deduplications = 0;
};

Breakdown run_pair(double rssi_b, double bg_load, double fps,
                   double measure_s, std::uint64_t seed,
                   ChaosKnobs& chaos) {
  apps::TestbedConfig config;
  config.workers = {"B"};
  config.seed = seed;
  config.weak_signal_bcd = false;
  // Fig. 2's instrumentation lets queues grow further than the runtime
  // default before shedding; match its horizon.
  config.swarm.worker.compute_backlog_cap = 48;
  if (chaos.loss > 0.0) {
    config.swarm.chaos_enabled = true;
    config.swarm.chaos.seed = chaos.seed;
    config.swarm.chaos.loss = chaos.loss;
    config.swarm.with_recovery();
  }
  apps::Testbed bed{config};
  bed.swarm().medium().set_rssi_override(bed.id("B"), rssi_b);
  bed.swarm().device(bed.id("B")).set_background_load(bg_load);

  apps::FaceRecognitionConfig app;
  app.fps = fps;
  bed.launch(apps::face_recognition_graph(app));
  bed.run(seconds(10));  // Warmup / queue fill.
  const SimTime t0 = bed.sim().now();
  bed.run(seconds(measure_s));

  chaos.retransmissions += bed.swarm().metrics().retransmissions();
  chaos.deduplications += bed.swarm().metrics().deduplications();

  Breakdown out;
  std::size_t n = 0;
  for (const auto& f : bed.swarm().metrics().frames()) {
    if (f.arrival < t0) continue;
    out.transmission += f.breakdown.transmission_ms;
    out.processing += f.breakdown.processing_ms;
    out.queuing += f.breakdown.queuing_ms;
    ++n;
  }
  if (n > 0) {
    out.transmission /= double(n);
    out.processing /= double(n);
    out.queuing /= double(n);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "fig02_dynamism", 30.0);
  const double measure_s = cli.duration_s;
  const bool csv = args.has("csv");
  ChaosKnobs chaos;
  chaos.loss = args.get_double("loss", 0.0);
  chaos.seed = std::uint64_t(args.get_int("chaos-seed", 1));
  obs::BenchReport report = cli.make_report();
  report.set_config("loss", chaos.loss);
  report.set_config("chaos_seed", std::int64_t(chaos.seed));
  auto add_row = [&report](const std::string& sweep, const std::string& knob,
                           const Breakdown& b) {
    obs::Json& row = report.add_result();
    row["sweep"] = sweep;
    row["knob"] = knob;
    row["transmission_ms"] = b.transmission;
    row["processing_ms"] = b.processing;
    row["queuing_ms"] = b.queuing;
  };

  auto print = [&](TextTable& t) {
    if (csv) {
      t.print_csv(std::cout);
    } else {
      t.print(std::cout);
    }
  };

  std::cout << "=== Fig 2a: signal strength (24 FPS, idle CPU) ===\n";
  {
    TextTable t({"signal", "RSSI (dBm)", "transmission (ms)",
                 "processing (ms)"});
    const std::pair<const char*, double> zones[] = {
        {"Good", -35.0}, {"Fair", -65.0}, {"Bad", -79.0}};
    for (const auto& [name, rssi] : zones) {
      const auto b = run_pair(rssi, 0.0, 24.0, measure_s, cli.seed, chaos);
      t.row(name, rssi, b.transmission, b.processing);
      add_row("signal", name, b);
    }
    print(t);
    std::cout << "(paper: Bad-zone transmission dominates, ~2-3 s)\n\n";
  }

  std::cout << "=== Fig 2b: CPU usage on B (24 FPS, good signal) ===\n";
  {
    TextTable t({"bg CPU", "transmission (ms)", "processing (ms)"});
    for (double load : {0.2, 0.6, 1.0}) {
      const auto b = run_pair(-35.0, load, 24.0, measure_s, cli.seed, chaos);
      t.row(fmt(load * 100, 0) + "%", b.transmission, b.processing);
      add_row("cpu", fmt(load * 100, 0) + "%", b);
    }
    print(t);
    std::cout << "(paper: processing delay grows with contention)\n\n";
  }

  std::cout << "=== Fig 2c: input rate (good signal, idle CPU) ===\n";
  {
    TextTable t({"FPS", "transmission (ms)", "processing (ms)",
                 "queuing (ms)"});
    for (double fps : {5.0, 10.0, 20.0}) {
      const auto b = run_pair(-35.0, 0.0, fps, measure_s, cli.seed, chaos);
      t.row(fps, b.transmission, b.processing, b.queuing);
      add_row("rate", fmt(fps, 0) + "fps", b);
    }
    print(t);
    std::cout << "(paper: queuing explodes once the rate exceeds B's "
                 "~10 FPS capacity)\n";
  }
  if (chaos.loss > 0.0) {
    report.set_summary("retransmissions", chaos.retransmissions);
    report.set_summary("deduplications", chaos.deduplications);
    std::cout << "\nchaos: loss=" << chaos.loss << " seed=" << chaos.seed
              << " -> " << chaos.retransmissions << " retransmissions, "
              << chaos.deduplications << " dedups across all sweeps\n";
  }
  cli.finish(report);
  return 0;
}
