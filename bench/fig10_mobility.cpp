// Reproduces Fig. 10: user mobility. B, G, H compute under LRS; all start
// near the AP (> -30 dBm). After one minute G's user walks to a spot with
// weaker signal (-70..-60 dBm), stays a minute, then moves to a poor-signal
// spot (-80..-70 dBm). The paper plots overall throughput (top) and
// per-device delivered load (bottom); load shifts off G as its link decays
// and overall throughput recovers after each transition.
#include "bench/bench_util.h"
#include "common/ascii_chart.h"

using namespace swing;
using namespace swing::bench;

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const double phase_s = args.get_double("phase", 60.0);
  const double bin_s = args.get_double("bin", 10.0);
  const BenchCli cli = parse_standard(args, "fig10_mobility", 3.0 * phase_s);
  obs::BenchReport report = cli.make_report();
  report.set_config("phase_s", phase_s);
  report.set_config("bin_s", bin_s);

  apps::TestbedConfig config;
  config.workers = {"B", "G", "H"};
  config.weak_signal_bcd = false;
  config.strong_rssi_dbm = -28.0;  // Paper zone 1: > -30 dBm.
  config.seed = cli.seed;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  auto& swarm = bed.swarm();
  const auto g = bed.id("G");
  const SimTime t0 = bed.sim().now();

  // Zone schedule for G (paper zones; mid-zone RSSI values).
  swarm.walker(g).jump_to_rssi_at(t0 + seconds(phase_s), -65.0);
  swarm.walker(g).jump_to_rssi_at(t0 + seconds(2 * phase_s), -77.5);

  // Sample per-device counters every bin.
  struct Sample {
    double t;
    double rssi_g;
    double overall_fps;
    double b_fps, g_fps, h_fps;
  };
  std::vector<Sample> samples;
  std::uint64_t prev_b = 0, prev_g = 0, prev_h = 0;
  std::size_t prev_frames = 0;
  const int nbins = int(3.0 * phase_s / bin_s);
  for (int i = 0; i < nbins; ++i) {
    bed.run(seconds(bin_s));
    const auto& m = swarm.metrics();
    const auto b_now = m.device(bed.id("B")).frames_from_source;
    const auto g_now = m.device(g).frames_from_source;
    const auto h_now = m.device(bed.id("H")).frames_from_source;
    const auto frames_now = m.frames_arrived();
    samples.push_back({(bed.sim().now() - t0).seconds(),
                       swarm.medium().rssi(g),
                       double(frames_now - prev_frames) / bin_s,
                       double(b_now - prev_b) / bin_s,
                       double(g_now - prev_g) / bin_s,
                       double(h_now - prev_h) / bin_s});
    prev_b = b_now;
    prev_g = g_now;
    prev_h = h_now;
    prev_frames = frames_now;
  }

  std::cout << "=== Fig 10: G walks through three signal zones (LRS) ===\n";
  TextTable table({"t (s)", "G RSSI (dBm)", "overall FPS", "B FPS", "G FPS",
                   "H FPS"});
  for (const auto& s : samples) {
    table.row(s.t, s.rssi_g, s.overall_fps, s.b_fps, s.g_fps, s.h_fps);

    obs::Json& row = report.add_result();
    row["t_s"] = s.t;
    row["rssi_g_dbm"] = s.rssi_g;
    row["overall_fps"] = s.overall_fps;
    row["b_fps"] = s.b_fps;
    row["g_fps"] = s.g_fps;
    row["h_fps"] = s.h_fps;
  }
  if (args.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  ChartSeries overall{"overall", '*', {}};
  ChartSeries g_fps{"G", 'g', {}};
  ChartSeries b_fps{"B", 'b', {}};
  ChartSeries h_fps{"H", 'h', {}};
  for (const auto& s : samples) {
    overall.points.emplace_back(s.t, s.overall_fps);
    g_fps.points.emplace_back(s.t, s.g_fps);
    b_fps.points.emplace_back(s.t, s.b_fps);
    h_fps.points.emplace_back(s.t, s.h_fps);
  }
  ChartOptions options;
  options.width = 66;
  options.height = 12;
  options.y_min = 0.0;
  options.y_max = 26.0;
  options.x_label = "time (s); zone changes at t=" +
                    fmt(phase_s, 0) + " and t=" + fmt(2 * phase_s, 0);
  std::cout << render_chart({overall, b_fps, g_fps, h_fps}, options);
  std::cout << "(paper: overall throughput recovers quickly after each "
               "move as Swing re-routes G's share to B and H)\n";
  cli.finish(report);
  return 0;
}
