// Ablation: the SEEP-style bounded input buffer (compute_backlog_cap).
// An overloaded device must either shed tuples (small cap: bounded latency,
// lower delivered throughput from stragglers) or queue them (large cap:
// nothing dropped but latency grows without bound — Fig. 1's behaviour).
// Sweeps the cap on the full policy testbed under RR, where stragglers
// actually overload.
#include "bench/bench_util.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Row {
  double fps;
  double mean_ms;
  double max_ms;
  std::uint64_t compute_drops;
};

Row run(std::size_t cap, double measure_s, std::uint64_t seed) {
  apps::TestbedConfig config;
  // All-strong signal + RR: the network carries the full 24 FPS, so the
  // slow CPUs (E at ~2 FPS capacity against a 3 FPS share) are what
  // overloads — exactly the case the input buffer governs.
  config.policy = core::PolicyKind::kRR;
  config.weak_signal_bcd = false;
  config.swarm.worker.compute_backlog_cap = cap;
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));
  const SimTime t0 = bed.sim().now();
  const auto drops0 = bed.swarm().metrics().drops(swing::core::DropReason::kComputeBacklog);
  bed.run(seconds(measure_s));

  Row r{};
  r.fps = bed.swarm().metrics().throughput_fps(t0, bed.sim().now());
  const auto stats = bed.swarm().metrics().latency_stats(t0, bed.sim().now());
  r.mean_ms = stats.mean();
  r.max_ms = stats.max();
  r.compute_drops = bed.swarm().metrics().drops(swing::core::DropReason::kComputeBacklog) - drops0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ablate_input_buffer", 60.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Ablation: bounded input buffer under RR (face "
               "recognition testbed) ===\n";
  TextTable table({"backlog cap", "throughput (FPS)", "lat mean (ms)",
                   "lat max (ms)", "tuples shed"});
  for (std::size_t cap : {8UL, 24UL, 100UL, 1000UL}) {
    const Row r = run(cap, measure_s, cli.seed);
    table.row(cap, r.fps, r.mean_ms, r.max_ms, r.compute_drops);

    obs::Json& row = report.add_result();
    row["backlog_cap"] = std::uint64_t(cap);
    row["throughput_fps"] = r.fps;
    row["latency_mean_ms"] = r.mean_ms;
    row["latency_max_ms"] = r.max_ms;
    row["tuples_shed"] = r.compute_drops;
  }
  table.print(std::cout);
  std::cout << "(expected: small caps bound latency by shedding on the "
               "slow device; huge caps let queues grow toward Fig. 1's "
               "unbounded build-up)\n";
  cli.finish(report);
  return 0;
}
