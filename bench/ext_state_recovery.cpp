// Extension study (swing-state): what operator-state checkpointing buys
// when a device leaves mid-run, measured on the app where it matters —
// scene analysis, whose fusion join holds cross-branch half-results in
// memory. Reruns the Fig. 9 "leave" event (abrupt departure of a
// fusion-hosting worker) and a chaos crash (same departure on a lossy
// medium), each with checkpointing off (the swing-chaos recovery path
// alone) and on (periodic snapshots shipped to the master, restore on a
// survivor). With checkpoints the join's pending halves survive the
// crash, so strictly fewer frames are lost; anything consumed since the
// last checkpoint is booked as state-lost drops, never silently
// vanished. The planned-departure path (quiesce -> drain -> final
// snapshot -> restore on the target) is measured too: zero tuple loss,
// ledger-audited.
//
// Frames lost is terminal: emitted minus delivered after stop + drain,
// so late-but-recovered frames do not count (the fig09 windowed metric
// would misread retransmission latency as loss).
#include "bench/bench_util.h"
#include "common/ascii_chart.h"

#include "apps/scene_analysis.h"
#include "core/tuple_ledger.h"
#include "runtime/scenario.h"

using namespace swing;
using namespace swing::bench;

namespace {

OperatorId find_op(const dataflow::AppGraph& graph, const std::string& name) {
  for (const auto& op : graph.operators()) {
    if (op.name == name) return op.id;
  }
  return OperatorId{};
}

// Depth and duration of the delivered-scenes dip after the event; same
// definition as fig09_join_leave (baseline = mean pre-event bins minus
// warmup, dip lasts while bins stay under 90% of baseline).
struct DipStats {
  double baseline_fps = 0.0;
  double depth_fps = 0.0;
  double duration_s = 0.0;
};

DipStats dip_stats(const std::vector<std::size_t>& bins, int event_s) {
  DipStats out;
  const std::size_t warmup = 2;
  std::size_t n = 0;
  for (std::size_t i = warmup; i < bins.size() && int(i) < event_s; ++i) {
    out.baseline_fps += double(bins[i]);
    ++n;
  }
  if (n > 0) out.baseline_fps /= double(n);
  double lowest = out.baseline_fps;
  for (std::size_t i = std::size_t(event_s); i < bins.size(); ++i) {
    lowest = std::min(lowest, double(bins[i]));
    if (double(bins[i]) < 0.9 * out.baseline_fps) {
      out.duration_s += 1.0;
    } else if (out.duration_s > 0.0) {
      break;
    }
  }
  out.depth_fps = out.baseline_fps - lowest;
  return out;
}

struct RunResult {
  std::vector<std::size_t> bins;
  DipStats dip;
  std::uint64_t frames_lost = 0;    // Terminal: emitted - delivered, drained.
  std::uint64_t state_lost = 0;     // Drops booked as DropReason::kStateLost.
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoints_restored = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migration_aborts = 0;
  std::uint64_t deltas_taken = 0;
  std::uint64_t state_bytes = 0;    // Checkpoint bytes shipped, full + delta.
  bool conserved = false;
  std::string audit;
};

enum class Event { kCrash, kMigrate, kAbortedMigrate };

// One scene-analysis run on the strong-signal trio G/H/I with the event
// fired at `before_s`. Checkpointing (100 ms interval) rides on top of the
// swing-chaos recovery path when enabled; `loss` > 0 turns the clean leave
// into a chaos crash on a lossy medium; `deltas_per_full` > 0 switches the
// checkpoint plane to delta cadence (journals between periodic fulls).
RunResult run_scenario(Event event, bool checkpointing, double loss,
                       int before_s, int after_s, std::uint64_t seed,
                       std::size_t deltas_per_full = 0) {
  apps::SceneAnalysisConfig app;
  // Widen the branch asymmetry so the join genuinely holds state: face
  // halves wait ~145 ms for their object half, so there are pending
  // frames inside the fusion instances at any instant — exactly the state
  // a crash destroys and a checkpoint preserves. Costs keep the object
  // branch at ~60% utilisation so steady-state losses stay at zero and
  // every lost frame is attributable to the event.
  app.face_cost_ms = 5.0;
  app.object_cost_ms = 150.0;
  apps::TestbedConfig config;
  config.workers = {"G", "H", "I"};
  config.seed = seed;
  config.swarm.with_recovery();
  if (checkpointing) config.swarm.with_checkpointing(millis(100));
  if (checkpointing && deltas_per_full > 0) {
    config.swarm.with_delta_checkpointing(deltas_per_full);
  }
  if (loss > 0.0) {
    config.swarm.chaos_enabled = true;
    config.swarm.chaos.seed = seed;
    config.swarm.chaos.loss = loss;
  }

  apps::Testbed bed{config};
  bed.launch(apps::scene_analysis_graph(app));
  auto& swarm = bed.swarm();
  const OperatorId fusion = find_op(swarm.graph(), "fusion");

  // Deterministic victim: the first fusion instance hosted off the master
  // device (the same rule the State* tests use). For migration the target
  // is the next distinct fusion-hosting worker.
  DeviceId victim{};
  DeviceId target{};
  for (const auto& info : swarm.master()->instances_of(fusion)) {
    if (info.device == swarm.master()->device()) continue;
    if (!victim.valid()) {
      victim = info.device;
    } else if (info.device != victim && !target.valid()) {
      target = info.device;
    }
  }

  const SimTime t0 = bed.sim().now();
  bed.run(seconds(double(before_s)));

  if (event == Event::kCrash) {
    swarm.leave_abruptly(victim);
  } else if (event == Event::kMigrate) {
    swarm.migrate_stateful(victim, target);
  } else {
    // 2PC abort path: the destination dies right after PREPARE goes out, so
    // it never acks; the coordinator's prepare timeout fires and the
    // instance resumes at the source (presumed abort).
    swarm.crash_during_migration(victim, target,
                                 runtime::MigrationPhase::kPrepareSent,
                                 runtime::Swarm::MigrationVictim::kDestination);
  }
  bed.run(seconds(double(after_s)));

  RunResult out;
  out.bins = swarm.metrics().throughput_bins(t0, bed.sim().now());
  out.dip = dip_stats(out.bins, before_s);
  out.checkpoints_taken = swarm.metrics().checkpoints_taken();
  out.checkpoints_restored = swarm.metrics().checkpoints_restored();
  out.migrations = swarm.metrics().migrations_completed();
  out.migration_aborts = swarm.registry().counter("migrations_aborted").value();
  out.deltas_taken = swarm.metrics().deltas_taken();
  out.state_bytes = swarm.metrics().state_bytes();

  // Drain before auditing so every in-flight tuple lands or drops
  // deterministically; only then is emitted - delivered a loss count.
  swarm.stop();
  bed.run(seconds(8.0));
  const core::AuditReport report = swarm.audit();
  out.frames_lost = report.emitted - report.delivered;
  out.conserved = report.conserved();
  out.audit = report.summary();
  const auto it = report.drops_by_reason.find(core::DropReason::kStateLost);
  if (it != report.drops_by_reason.end()) out.state_lost = it->second;
  return out;
}

void print_run(const char* label, const RunResult& run, int event_s) {
  std::cout << "--- " << label << " ---\n";
  ChartSeries tput{"delivered scenes/s", '*', {}};
  for (std::size_t i = 0; i < run.bins.size(); ++i) {
    tput.points.emplace_back(double(i), double(run.bins[i]));
  }
  ChartOptions options;
  options.width = 60;
  options.height = 8;
  options.y_min = 0.0;
  options.y_max = 15.0;
  options.x_label = "time (s)";
  std::cout << render_chart({tput}, options);
  std::cout << "event at t=" << event_s << "s; frames lost " << run.frames_lost
            << "; dip " << fmt(run.dip.depth_fps, 1) << " fps for "
            << fmt(run.dip.duration_s, 0) << " s; checkpoints taken "
            << run.checkpoints_taken << ", restored "
            << run.checkpoints_restored << ", state-lost drops "
            << run.state_lost << "\n"
            << "audit: " << run.audit << "\n\n";
}

void add_rows(obs::BenchReport& report, const char* scenario,
              const RunResult& run) {
  for (std::size_t i = 0; i < run.bins.size(); ++i) {
    obs::Json& row = report.add_result();
    row["scenario"] = scenario;
    row["t_s"] = std::uint64_t(i);
    row["throughput_fps"] = std::uint64_t(run.bins[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const int before_s = args.get_int("before", 8);
  const int after_s = args.get_int("after", 12);
  const double chaos_loss = args.get_double("loss", 0.05);
  const BenchCli cli =
      parse_standard(args, "ext_state_recovery", double(before_s + after_s));
  obs::BenchReport report = cli.make_report();
  report.set_config("before_s", std::int64_t(before_s));
  report.set_config("after_s", std::int64_t(after_s));
  report.set_config("chaos_loss", chaos_loss);

  std::cout << "=== ext_state_recovery: scene-analysis join under leave, "
               "chaos crash, and migration ===\n\n";

  const RunResult leave_off =
      run_scenario(Event::kCrash, false, 0.0, before_s, after_s, cli.seed);
  print_run("leave, checkpointing OFF (recovery only)", leave_off, before_s);

  const RunResult leave_on =
      run_scenario(Event::kCrash, true, 0.0, before_s, after_s, cli.seed);
  print_run("leave, checkpointing ON (100 ms interval)", leave_on, before_s);

  const RunResult chaos_off = run_scenario(Event::kCrash, false, chaos_loss,
                                           before_s, after_s, cli.seed);
  print_run("chaos crash (lossy medium), checkpointing OFF", chaos_off,
            before_s);

  const RunResult chaos_on = run_scenario(Event::kCrash, true, chaos_loss,
                                          before_s, after_s, cli.seed);
  print_run("chaos crash (lossy medium), checkpointing ON", chaos_on,
            before_s);

  const RunResult moved =
      run_scenario(Event::kMigrate, true, 0.0, before_s, after_s, cli.seed);
  print_run("planned migration, checkpointing ON", moved, before_s);

  // Checkpoint plane v2: the same clean-leave crash with delta cadence
  // (8 journals per full). The claim under test: strictly fewer state
  // bytes on the wire at equal-or-better frames lost.
  const RunResult leave_delta = run_scenario(Event::kCrash, true, 0.0,
                                             before_s, after_s, cli.seed, 8);
  print_run("leave, delta checkpointing ON (8 deltas/full)", leave_delta,
            before_s);

  // Checkpoint plane v2: a migration whose destination dies mid-2PC. The
  // prepare times out, the coordinator aborts, and the source resumes —
  // no stranded or duplicated instance, ledger conserved.
  const RunResult aborted = run_scenario(Event::kAbortedMigrate, true, 0.0,
                                         before_s, after_s, cli.seed);
  print_run("migration aborted (destination crash mid-2PC)", aborted,
            before_s);

  add_rows(report, "leave_nockpt", leave_off);
  add_rows(report, "leave_ckpt", leave_on);
  add_rows(report, "chaos_nockpt", chaos_off);
  add_rows(report, "chaos_ckpt", chaos_on);
  add_rows(report, "migrate", moved);
  add_rows(report, "leave_delta", leave_delta);
  add_rows(report, "migrate_abort", aborted);

  report.set_summary("leave_nockpt_frames_lost", leave_off.frames_lost);
  report.set_summary("leave_ckpt_frames_lost", leave_on.frames_lost);
  report.set_summary("leave_nockpt_recovery_s", leave_off.dip.duration_s);
  report.set_summary("leave_ckpt_recovery_s", leave_on.dip.duration_s);
  report.set_summary("chaos_nockpt_frames_lost", chaos_off.frames_lost);
  report.set_summary("chaos_ckpt_frames_lost", chaos_on.frames_lost);
  report.set_summary("ckpt_state_lost", leave_on.state_lost);
  report.set_summary("checkpoints_taken", leave_on.checkpoints_taken);
  report.set_summary("checkpoints_restored", leave_on.checkpoints_restored);
  report.set_summary("migrate_frames_lost", moved.frames_lost);
  report.set_summary("migrate_state_lost", moved.state_lost);
  report.set_summary("migrations_completed", moved.migrations);
  report.set_summary("migrate_conserved", moved.conserved ? 1.0 : 0.0);
  // Checkpoint plane v2 gate (tools/check_bench_json.py): the delta run
  // must ship fewer checkpoint bytes than the full-only run, both > 0.
  report.set_summary("checkpoint_bytes_full", leave_on.state_bytes);
  report.set_summary("checkpoint_bytes_delta", leave_delta.state_bytes);
  report.set_summary("frames_lost", leave_delta.frames_lost);
  report.set_summary("deltas_taken", leave_delta.deltas_taken);
  report.set_summary("migration_aborts", aborted.migration_aborts);
  report.set_summary("abort_conserved", aborted.conserved ? 1.0 : 0.0);

  std::cout << "=== summary ===\n"
            << "leave frames lost:       " << leave_off.frames_lost
            << " (no checkpoint) vs " << leave_on.frames_lost
            << " (checkpointed)\n"
            << "chaos crash frames lost: " << chaos_off.frames_lost
            << " (no checkpoint) vs " << chaos_on.frames_lost
            << " (checkpointed)\n"
            << "planned migration: " << moved.frames_lost << " frames lost, "
            << moved.migrations << " instance(s) moved, state-lost drops "
            << moved.state_lost
            << (moved.conserved ? ", ledger conserved" : ", LEDGER IMBALANCE")
            << "\n"
            << "delta cadence: " << leave_delta.state_bytes
            << " state bytes vs " << leave_on.state_bytes << " full-only ("
            << leave_delta.deltas_taken << " deltas), frames lost "
            << leave_delta.frames_lost << " vs " << leave_on.frames_lost
            << "\n"
            << "aborted migration: " << aborted.migration_aborts
            << " abort(s), " << aborted.frames_lost << " frames lost"
            << (aborted.conserved ? ", ledger conserved"
                                  : ", LEDGER IMBALANCE")
            << "\n";

  cli.finish(report);
  return 0;
}
