// swing-chaos: deterministic fault injection and the recovery path.
//
// The suites here are the PR's acceptance gate: a chaos scenario with 20%
// packet loss and one abrupt crash must keep the audit green, deliver at
// least 90% of the fault-free run, and reproduce byte-identically from a
// single --chaos-seed. All fixtures are named Chaos* so CI's chaos-smoke
// job can select them with `ctest -R '^Chaos'`.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/face_recognition.h"
#include "apps/testbed.h"
#include "chaos/fault_plan.h"
#include "runtime/scenario.h"

namespace swing {
namespace {

using apps::Testbed;
using apps::TestbedConfig;
using chaos::FaultPlan;
using chaos::FaultPlanConfig;

// --- FaultPlan unit tests --------------------------------------------------

TEST(ChaosFaultPlan, SameSeedSameDecisionStream) {
  FaultPlanConfig config;
  config.seed = 99;
  config.loss = 0.3;
  config.duplicate = 0.1;
  config.delay_p = 0.2;
  FaultPlan a{config};
  FaultPlan b{config};
  for (int i = 0; i < 500; ++i) {
    const DeviceId src{std::uint64_t(i % 5)};
    const DeviceId dst{std::uint64_t((i + 1) % 5)};
    const auto da = a.on_message(src, dst, 7, SimTime{});
    const auto db = b.on_message(src, dst, 7, SimTime{});
    ASSERT_EQ(da.drop, db.drop) << "message " << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << "message " << i;
    ASSERT_EQ(da.extra_delay.nanos(), db.extra_delay.nanos())
        << "message " << i;
  }
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_GT(a.injected(), 0u);
}

TEST(ChaosFaultPlan, LossRateRoughlyHonoured) {
  FaultPlanConfig config;
  config.seed = 7;
  config.loss = 0.2;
  FaultPlan plan{config};
  int dropped = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (plan.on_message(DeviceId{1}, DeviceId{2}, 7, SimTime{}).drop) {
      ++dropped;
    }
  }
  EXPECT_NEAR(double(dropped) / n, 0.2, 0.03);
}

TEST(ChaosFaultPlan, AckLossOnlyHitsAckClasses) {
  FaultPlanConfig config;
  config.seed = 11;
  config.ack_loss = 1.0;  // Every ACK dies; data untouched.
  FaultPlan plan{config};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(
        plan.on_message(DeviceId{1}, DeviceId{2}, 7, SimTime{}).drop)
        << "data message dropped by ack-only loss";
    EXPECT_TRUE(plan.on_message(DeviceId{1}, DeviceId{2}, 8, SimTime{}).drop)
        << "ack survived ack_loss=1";
    EXPECT_TRUE(
        plan.on_message(DeviceId{1}, DeviceId{2}, 12, SimTime{}).drop)
        << "ack batch survived ack_loss=1";
  }
}

TEST(ChaosFaultPlan, PartitionIsSymmetricAndHeals) {
  FaultPlan plan{FaultPlanConfig{}};
  const DeviceId a{1}, b{2}, c{3};
  plan.partition(a, b, SimTime{} + seconds(10.0));

  EXPECT_TRUE(plan.partitioned(a, b, SimTime{}));
  EXPECT_TRUE(plan.partitioned(b, a, SimTime{}));
  EXPECT_FALSE(plan.partitioned(a, c, SimTime{}));
  EXPECT_TRUE(plan.on_message(a, b, 7, SimTime{}).drop);
  EXPECT_TRUE(plan.on_message(b, a, 8, SimTime{}).drop);
  EXPECT_FALSE(plan.on_message(a, c, 7, SimTime{}).drop);

  // Past heal_at the link is clean again.
  const SimTime later = SimTime{} + seconds(11.0);
  EXPECT_FALSE(plan.partitioned(a, b, later));
  EXPECT_FALSE(plan.on_message(a, b, 7, later).drop);

  plan.partition(a, b, SimTime::max());
  EXPECT_TRUE(plan.partitioned(a, b, later));
  plan.heal(a, b);
  EXPECT_FALSE(plan.partitioned(a, b, later));
}

TEST(ChaosFaultPlan, KnobChangeMidStreamKeepsDeterminism) {
  // The plan burns a fixed number of draws per message regardless of knob
  // state, so flipping a knob mid-run must not shift the stream the other
  // faults see. Two plans, one of which briefly raises duplicate: their
  // *drop* decisions stay identical throughout.
  FaultPlanConfig config;
  config.seed = 3;
  config.loss = 0.25;
  FaultPlan a{config};
  FaultPlan b{config};
  for (int i = 0; i < 300; ++i) {
    if (i == 100) b.set_duplicate(0.5);
    if (i == 200) b.set_duplicate(0.0);
    const auto da = a.on_message(DeviceId{1}, DeviceId{2}, 7, SimTime{});
    const auto db = b.on_message(DeviceId{1}, DeviceId{2}, 7, SimTime{});
    ASSERT_EQ(da.drop, db.drop) << "drop stream diverged at " << i;
  }
}

// --- End-to-end recovery scenarios ----------------------------------------

struct ChaosRun {
  std::uint64_t delivered = 0;
  std::uint64_t ledger_digest = 0;
  std::string registry_snapshot;
  core::AuditReport report;
  std::uint64_t retransmitted = 0;
  std::uint64_t deduplicated = 0;
  std::uint64_t local_fallbacks = 0;
};

// One face-recognition run on the paper testbed. When `chaos` is true:
// 20% global packet loss from t=2s and an abrupt crash of worker C at
// t=8s, with the full recovery path on.
ChaosRun run_face(std::uint64_t chaos_seed, bool chaos) {
  TestbedConfig config;
  config.seed = 42;
  config.workers = {"B", "C", "D", "E"};
  if (chaos) {
    config.swarm.chaos_enabled = true;
    config.swarm.chaos.seed = chaos_seed;
    config.swarm.with_recovery();
  }
  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());

  runtime::Scenario script{bed.swarm()};
  if (chaos) {
    script.loss_at(seconds(2.0), 0.2);
    script.crash_worker_at(seconds(8.0), bed.id("C"));
  }
  script.run_for(seconds(20.0));
  bed.swarm().stop();
  bed.run(seconds(5.0));  // Drain.

  ChaosRun out;
  out.report = bed.swarm().audit();
  out.delivered = out.report.delivered;
  out.ledger_digest = bed.swarm().ledger().digest();
  out.registry_snapshot = bed.swarm().registry().snapshot().dump();
  out.retransmitted = out.report.retransmissions;
  out.deduplicated = out.report.deduplications;
  out.local_fallbacks =
      bed.swarm().registry().counter_total("tuples_local_fallback");
  return out;
}

TEST(ChaosRecovery, TwentyPercentLossPlusCrashStaysAuditGreen) {
  const ChaosRun fault_free = run_face(1, /*chaos=*/false);
  const ChaosRun faulted = run_face(1, /*chaos=*/true);

  EXPECT_TRUE(faulted.report.ok()) << faulted.report.summary();
  ASSERT_GT(fault_free.delivered, 0u);
  // The acceptance bar: recovery holds delivery at >= 90% of fault-free.
  EXPECT_GE(faulted.delivered, fault_free.delivered * 9 / 10)
      << "fault-free " << fault_free.delivered << " vs faulted "
      << faulted.delivered << "; " << faulted.report.summary();
  // The wire really was lossy and the recovery path really ran.
  EXPECT_GT(faulted.retransmitted, 0u);
}

TEST(ChaosRecovery, SameChaosSeedIsByteIdentical) {
  const ChaosRun a = run_face(77, /*chaos=*/true);
  const ChaosRun b = run_face(77, /*chaos=*/true);
  EXPECT_EQ(a.ledger_digest, b.ledger_digest);
  EXPECT_EQ(a.registry_snapshot, b.registry_snapshot);
  EXPECT_EQ(a.delivered, b.delivered);

  const ChaosRun c = run_face(78, /*chaos=*/true);
  EXPECT_NE(a.ledger_digest, c.ledger_digest)
      << "chaos seed never reached the fault stream";
}

TEST(ChaosRecovery, AckLossConservesAfterDrain) {
  // ACK-only loss never destroys data, just receipts: retransmission plus
  // receiver dedup must keep the drained ledger strictly conserved.
  TestbedConfig config;
  config.seed = 42;
  config.workers = {"B", "C", "D"};
  config.swarm.chaos_enabled = true;
  config.swarm.chaos.seed = 5;
  config.swarm.chaos.ack_loss = 0.2;
  config.swarm.with_recovery();
  // Keep the exercise to retransmit+dedup: local fallback would re-execute
  // tuples whose data already landed (their ACKs died), which is the
  // partition suite's subject, not this one's.
  config.swarm.worker.recovery.local_fallback = false;

  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(15.0));
  bed.swarm().stop();
  bed.run(seconds(8.0));  // Drain past the longest retry backoff.

  const core::AuditReport report = bed.swarm().audit();
  EXPECT_TRUE(report.conserved()) << report.summary();
  EXPECT_GT(report.retransmissions, 0u) << "ack loss triggered no retries";
  EXPECT_GT(report.deduplications, 0u)
      << "retransmitted data never hit receiver dedup";
}

TEST(ChaosRecovery, AbruptLeaveMidBatchAttributesAndRetransmits) {
  // Batching on: tuples die in the victim's batch buffers and compute
  // queue at the instant of the crash. They must surface as abrupt-leave
  // drops (satellite: Swarm::leave_abruptly), while upstreams retransmit
  // their un-ACKed sends to the survivors.
  TestbedConfig config;
  config.seed = 42;
  config.workers = {"B", "C", "D"};
  config.swarm.worker.batching.enabled = true;
  config.swarm.chaos_enabled = true;
  config.swarm.chaos.seed = 9;
  config.swarm.with_recovery();

  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());

  runtime::Scenario script{bed.swarm()};
  // Throttle B hard so its compute queue backs up, then kill it: a device
  // that degrades and then dies, guaranteeing tuples are queued on it at
  // the crash instant.
  script.slow_worker_at(seconds(5.0), bed.id("B"), 25.0);
  script.crash_worker_at(seconds(6.5), bed.id("B"));
  script.run_for(seconds(16.0));
  bed.swarm().stop();
  bed.run(seconds(6.0));

  const core::AuditReport report = bed.swarm().audit();
  EXPECT_TRUE(report.ok()) << report.summary();
  const auto it = report.drops_by_reason.find(core::DropReason::kAbruptLeave);
  EXPECT_TRUE(it != report.drops_by_reason.end() && it->second > 0)
      << "crash left no abrupt-leave attribution: " << report.summary();
  EXPECT_GT(report.retransmissions, 0u)
      << "no upstream retried its un-ACKed sends after the crash";
  EXPECT_GT(report.delivered, 0u);
}

TEST(ChaosRecovery, FullPartitionFallsBackLocallyThenHeals) {
  // One worker, hard-partitioned from the master mid-run: every downstream
  // becomes unreachable, so the source device must degrade to local
  // execution rather than stall. After the heal, routing resumes.
  TestbedConfig config;
  config.seed = 42;
  config.workers = {"B"};
  config.swarm.chaos_enabled = true;
  config.swarm.chaos.seed = 21;
  config.swarm.with_recovery();

  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  const DeviceId a = bed.id("A");
  const DeviceId b = bed.id("B");

  runtime::Scenario script{bed.swarm()};
  script.partition_at(seconds(4.0), a, b, seconds(8.0));
  script.run_for(seconds(20.0));
  bed.swarm().stop();
  bed.run(seconds(6.0));

  const core::AuditReport report = bed.swarm().audit();
  EXPECT_TRUE(report.ok()) << report.summary();
  const std::uint64_t fallbacks =
      bed.swarm().registry().counter_total("tuples_local_fallback");
  EXPECT_GT(fallbacks, 0u)
      << "partition never drove local fallback: " << report.summary();
  EXPECT_GT(report.delivered, 0u);
}

TEST(ChaosRecovery, FreezeAndSlowdownSurvive) {
  // A GC-pause freeze buffers and replays; a 3x slowdown back-pressures.
  // Neither may corrupt accounting.
  TestbedConfig config;
  config.seed = 42;
  config.workers = {"B", "C"};
  config.swarm.chaos_enabled = true;
  config.swarm.chaos.seed = 13;
  config.swarm.with_recovery();

  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());

  runtime::Scenario script{bed.swarm()};
  script.freeze_worker_at(seconds(4.0), bed.id("B"), seconds(2.0));
  script.slow_worker_at(seconds(8.0), bed.id("C"), 3.0);
  script.run_for(seconds(16.0));
  bed.swarm().stop();
  bed.run(seconds(6.0));

  const core::AuditReport report = bed.swarm().audit();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.delivered, 0u);
}

TEST(ChaosEviction, AckSilenceEvictsAheadOfEstimatorDecay) {
  // A crashed worker goes ACK-silent; the upstream manager must mark it
  // suspect and stop routing to it, surfacing in workers_evicted.
  TestbedConfig config;
  config.seed = 42;
  config.workers = {"B", "C"};
  config.swarm.chaos_enabled = true;
  config.swarm.chaos.seed = 17;
  config.swarm.with_recovery();

  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());

  runtime::Scenario script{bed.swarm()};
  script.crash_worker_at(seconds(6.0), bed.id("B"));
  script.run_for(seconds(18.0));
  bed.swarm().stop();
  bed.run(seconds(5.0));

  EXPECT_GT(bed.swarm().registry().counter_total("workers_evicted"), 0u);
  const core::AuditReport report = bed.swarm().audit();
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace swing
