#include "device/mobility.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace swing::device {
namespace {

class WalkerTest : public ::testing::Test {
 protected:
  WalkerTest() : medium_(sim_) {
    medium_.attach(id_, net::Position{2.0, 0.0});
  }

  Simulator sim_;
  net::Medium medium_;
  DeviceId id_{0};
};

TEST_F(WalkerTest, WalkReachesDestination) {
  Walker walker{sim_, medium_, id_};
  bool arrived = false;
  walker.walk_to({20.0, 0.0}, 1.5, [&] { arrived = true; });
  sim_.run_for(seconds(30));
  EXPECT_TRUE(arrived);
  EXPECT_FALSE(walker.walking());
  EXPECT_NEAR(medium_.position(id_).x, 20.0, 1e-9);
}

TEST_F(WalkerTest, WalkTakesRealisticTime) {
  Walker walker{sim_, medium_, id_};
  SimTime arrival;
  walker.walk_to({20.0, 0.0}, 1.5, [&] { arrival = sim_.now(); });
  sim_.run_for(seconds(30));
  // 18 m at 1.5 m/s = 12 s.
  EXPECT_NEAR(arrival.seconds(), 12.0, 0.5);
}

TEST_F(WalkerTest, RssiDegradesWhileWalkingAway) {
  Walker walker{sim_, medium_, id_};
  const double start_rssi = medium_.rssi(id_);
  walker.walk_to({30.0, 0.0}, 1.5);
  sim_.run_for(seconds(5));
  const double mid_rssi = medium_.rssi(id_);
  sim_.run_for(seconds(30));
  const double end_rssi = medium_.rssi(id_);
  EXPECT_LT(mid_rssi, start_rssi);
  EXPECT_LT(end_rssi, mid_rssi);
}

TEST_F(WalkerTest, JumpToRssiOverrides) {
  Walker walker{sim_, medium_, id_};
  walker.jump_to_rssi(-72.5);
  EXPECT_DOUBLE_EQ(medium_.rssi(id_), -72.5);
}

TEST_F(WalkerTest, ScheduledJump) {
  Walker walker{sim_, medium_, id_};
  walker.jump_to_rssi_at(SimTime{} + seconds(60), -75.0);
  sim_.run_for(seconds(59));
  EXPECT_GT(medium_.rssi(id_), -50.0);
  sim_.run_for(seconds(2));
  EXPECT_DOUBLE_EQ(medium_.rssi(id_), -75.0);
}

TEST_F(WalkerTest, WalkClearsOverride) {
  Walker walker{sim_, medium_, id_};
  walker.jump_to_rssi(-75.0);
  walker.walk_to({2.0, 1.0}, 1.5);
  sim_.run_for(seconds(5));
  EXPECT_GT(medium_.rssi(id_), -50.0);  // Position-driven again.
}

TEST_F(WalkerTest, CancelWalkStops) {
  Walker walker{sim_, medium_, id_};
  walker.walk_to({100.0, 0.0}, 1.5);
  sim_.run_for(seconds(2));
  walker.cancel_walk();
  const auto pos = medium_.position(id_);
  sim_.run_for(seconds(10));
  EXPECT_EQ(medium_.position(id_), pos);
}

TEST_F(WalkerTest, NewWalkPreemptsOld) {
  Walker walker{sim_, medium_, id_};
  walker.walk_to({100.0, 0.0}, 1.5);
  sim_.run_for(seconds(2));
  bool arrived = false;
  walker.walk_to({2.0, 0.0}, 5.0, [&] { arrived = true; });
  sim_.run_for(seconds(10));
  EXPECT_TRUE(arrived);
  EXPECT_NEAR(medium_.position(id_).x, 2.0, 1e-9);
}

}  // namespace
}  // namespace swing::device
