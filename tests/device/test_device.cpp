#include "device/device.h"

#include <gtest/gtest.h>

#include "device/profile.h"
#include "common/stats.h"
#include "sim/simulator.h"

namespace swing::device {
namespace {

DeviceProfile exact_profile(double perf = 1.0) {
  DeviceProfile p = profile_B();
  p.perf_index = perf;
  p.service_cv = 0.0;  // Deterministic service times for timing asserts.
  return p;
}

class DeviceTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(DeviceTest, ExecutesJob) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  bool done = false;
  dev.execute(50.0, [&](const JobTiming&) { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dev.jobs_completed(), 1u);
}

TEST_F(DeviceTest, ServiceTimeScalesWithPerf) {
  Device fast{sim_, DeviceId{0}, exact_profile(2.0), Rng{1}};
  SimTime done;
  fast.execute(100.0, [&](const JobTiming& t) { done = t.finished; });
  sim_.run();
  EXPECT_EQ(done, SimTime{} + millis(50));  // 100 ms ref / 2.0 perf.
}

TEST_F(DeviceTest, SlowDeviceTakesLonger) {
  Device slow{sim_, DeviceId{0}, exact_profile(0.2), Rng{1}};
  SimTime done;
  slow.execute(100.0, [&](const JobTiming& t) { done = t.finished; });
  sim_.run();
  EXPECT_EQ(done, SimTime{} + millis(500));
}

TEST_F(DeviceTest, JobsRunFifo) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    dev.execute(10.0, [&order, i](const JobTiming&) { order.push_back(i); });
  }
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(DeviceTest, QueuingDelayMeasured) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  JobTiming second{};
  dev.execute(100.0, [](const JobTiming&) {});
  dev.execute(100.0, [&](const JobTiming& t) { second = t; });
  sim_.run();
  EXPECT_EQ(second.queuing(), millis(100));   // Waited for job 1.
  EXPECT_EQ(second.processing(), millis(100));
  EXPECT_EQ(second.finished, SimTime{} + millis(200));
}

TEST_F(DeviceTest, BacklogCountsQueuedAndRunning) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  EXPECT_EQ(dev.backlog(), 0u);
  dev.execute(100.0, [](const JobTiming&) {});
  dev.execute(100.0, [](const JobTiming&) {});
  // Nothing has started (no events run yet): 2 queued... after first event
  // the head job is in service.
  EXPECT_EQ(dev.backlog(), 2u);
  sim_.run_for(millis(150));
  EXPECT_EQ(dev.backlog(), 1u);
  sim_.run();
  EXPECT_EQ(dev.backlog(), 0u);
}

TEST_F(DeviceTest, BackgroundLoadInflatesServiceTime) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  dev.set_background_load(1.0);
  SimTime done;
  dev.execute(100.0, [&](const JobTiming& t) { done = t.finished; });
  sim_.run();
  // Multiplier 1 + 1.5*1.0 = 2.5.
  EXPECT_EQ(done, SimTime{} + millis(250));
}

TEST_F(DeviceTest, NominalServiceTimeMatchesExecution) {
  Device dev{sim_, DeviceId{0}, exact_profile(0.5), Rng{1}};
  dev.set_background_load(0.6);
  SimTime done;
  dev.execute(40.0, [&](const JobTiming& t) { done = t.finished; });
  sim_.run();
  EXPECT_EQ(done - SimTime{}, dev.nominal_service_time(40.0));
}

TEST_F(DeviceTest, BusySecondsAccumulate) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  dev.execute(100.0, [](const JobTiming&) {});
  dev.execute(200.0, [](const JobTiming&) {});
  sim_.run();
  EXPECT_NEAR(dev.busy_seconds(), 0.3, 1e-9);
}

TEST_F(DeviceTest, BackgroundLoadCountsTowardCpuSeconds) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  dev.set_background_load(0.5);
  sim_.run_for(seconds(10));
  EXPECT_NEAR(dev.total_cpu_seconds(sim_.now()), 5.0, 1e-9);
}

TEST_F(DeviceTest, BackgroundLoadChangeSettlesCorrectly) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  dev.set_background_load(1.0);
  sim_.run_for(seconds(2));
  dev.set_background_load(0.0);
  sim_.run_for(seconds(10));
  EXPECT_NEAR(dev.total_cpu_seconds(sim_.now()), 2.0, 1e-9);
}

TEST_F(DeviceTest, CpuEnergyIdleBaseline) {
  DeviceProfile p = exact_profile();
  p.cpu_idle_w = 0.1;
  p.cpu_peak_w = 1.1;
  Device dev{sim_, DeviceId{0}, p, Rng{1}};
  sim_.run_for(seconds(100));
  EXPECT_NEAR(dev.cpu_energy_j(sim_.now()), 10.0, 1e-6);  // Idle only.
}

TEST_F(DeviceTest, CpuEnergyGrowsWithWork) {
  DeviceProfile p = exact_profile();
  p.cpu_idle_w = 0.1;
  p.cpu_peak_w = 1.1;
  Device dev{sim_, DeviceId{0}, p, Rng{1}};
  dev.execute(10000.0, [](const JobTiming&) {});  // 10 s of work.
  sim_.run_for(seconds(100));
  // 100 s idle (10 J) + 10 busy-seconds * (1.1-0.1) = 10 J.
  EXPECT_NEAR(dev.cpu_energy_j(sim_.now()), 20.0, 1e-6);
}

TEST_F(DeviceTest, EnergyMonotoneInTime) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  double prev = 0.0;
  for (int i = 0; i < 10; ++i) {
    dev.execute(20.0, [](const JobTiming&) {});
    sim_.run_for(seconds(1));
    const double e = dev.cpu_energy_j(sim_.now());
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST_F(DeviceTest, ServiceJitterIsMultiplicative) {
  DeviceProfile p = profile_B();  // cv = 0.10
  Device dev{sim_, DeviceId{0}, p, Rng{7}};
  OnlineStats times;
  for (int i = 0; i < 300; ++i) {
    dev.execute(100.0, [&](const JobTiming& t) {
      times.add(t.processing().millis());
    });
  }
  sim_.run();
  EXPECT_NEAR(times.mean(), 100.0, 3.0);
  EXPECT_NEAR(times.stddev() / times.mean(), 0.10, 0.03);
}

TEST_F(DeviceTest, CallbackCanResubmit) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  int completed = 0;
  std::function<void(const JobTiming&)> again = [&](const JobTiming&) {
    if (++completed < 5) dev.execute(10.0, again);
  };
  dev.execute(10.0, again);
  sim_.run();
  EXPECT_EQ(completed, 5);
}


TEST_F(DeviceTest, AdmitHookShedsAtServiceStart) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  int completed = 0;
  int shed = 0;
  // First job runs 100 ms; the second declines admission once it waited.
  dev.execute(100.0, [&](const JobTiming&) { ++completed; });
  dev.execute(100.0, [&](const JobTiming&) { ++completed; }, [&] {
    ++shed;
    return false;
  });
  dev.execute(50.0, [&](const JobTiming&) { ++completed; });
  sim_.run();
  EXPECT_EQ(completed, 2);  // First and third ran.
  EXPECT_EQ(shed, 1);
  // The shed job consumed no CPU: 150 ms total busy.
  EXPECT_NEAR(dev.busy_seconds(), 0.15, 1e-9);
}

TEST_F(DeviceTest, AdmitHookAcceptingRunsNormally) {
  Device dev{sim_, DeviceId{0}, exact_profile(), Rng{1}};
  bool done = false;
  dev.execute(10.0, [&](const JobTiming&) { done = true; },
              [] { return true; });
  sim_.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace swing::device
