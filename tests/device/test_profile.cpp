#include "device/profile.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace swing::device {
namespace {

TEST(Profiles, NineTestbedDevices) {
  EXPECT_EQ(testbed_profiles().size(), 9u);
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(profile_by_name("A").model, "Galaxy S3");
  EXPECT_EQ(profile_by_name("H").model, "LG Nexus 4");
  EXPECT_THROW(profile_by_name("Z"), std::out_of_range);
}

TEST(Profiles, ReferenceDeviceIsGalaxyNexus) {
  EXPECT_DOUBLE_EQ(profile_B().perf_index, 1.0);
  EXPECT_EQ(profile_B().model, "Galaxy Nexus");
}

// Table I calibration: perf_index must reproduce the measured per-frame
// face-recognition processing delays (92.9 ms reference workload).
struct TableOneRow {
  const char* name;
  double delay_ms;
};

class TableOneTest : public ::testing::TestWithParam<TableOneRow> {};

TEST_P(TableOneTest, ProcessingDelayMatchesPaper) {
  const auto& row = GetParam();
  const DeviceProfile& profile = profile_by_name(row.name);
  const double simulated_delay = 92.9 / profile.perf_index;
  EXPECT_NEAR(simulated_delay, row.delay_ms, row.delay_ms * 0.03)
      << "device " << row.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTableI, TableOneTest,
    ::testing::Values(TableOneRow{"B", 92.9}, TableOneRow{"C", 121.6},
                      TableOneRow{"D", 167.7}, TableOneRow{"E", 463.4},
                      TableOneRow{"F", 166.4}, TableOneRow{"G", 82.2},
                      TableOneRow{"H", 71.3}, TableOneRow{"I", 78.0}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(Profiles, HeterogeneityIsSixFold) {
  // Paper §III: fastest device (H) ~6x the slowest (E).
  const double ratio = profile_H().perf_index / profile_E().perf_index;
  EXPECT_GT(ratio, 5.5);
  EXPECT_LT(ratio, 7.5);
}

TEST(Profiles, NewerDevicesAreMoreEfficient) {
  // The PRS-vs-LRS energy story depends on fast devices also being
  // efficient: H (Nexus 4) must beat E (Galaxy S) on work per watt.
  EXPECT_GT(profile_H().efficiency(), 3.0 * profile_E().efficiency());
}

TEST(Profiles, PowerValuesSane) {
  for (const auto& p : testbed_profiles()) {
    EXPECT_GT(p.cpu_idle_w, 0.0);
    EXPECT_GT(p.cpu_peak_w, p.cpu_idle_w);
    EXPECT_LT(p.cpu_peak_w, 5.0);
    EXPECT_GT(p.wifi_peak_w, p.wifi_idle_w);
    EXPECT_GT(p.battery_wh, 1.0);
  }
}

TEST(Profiles, NamesAreUnique) {
  const auto& all = testbed_profiles();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i].name, all[j].name);
    }
  }
}

}  // namespace
}  // namespace swing::device
