// The batching service: coalescing small data messages per connection.
#include <gtest/gtest.h>

#include "device/profile.h"
#include "dataflow/codec.h"
#include "runtime/messages.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

namespace swing::runtime {
namespace {

// High-rate tiny-tuple app: 100 Hz of 200 B sensor readings.
dataflow::AppGraph sensor_app(double hz = 100.0, std::uint64_t max = 0) {
  dataflow::AppGraph g;
  dataflow::SourceSpec spec;
  spec.rate_per_s = hz;
  spec.max_tuples = max;
  spec.generate = [](TupleId id, SimTime, Rng&) {
    dataflow::Tuple t;
    t.set("reading", dataflow::Blob{200, id.value()});
    return t;
  };
  const auto src = g.add_source("sensor", std::move(spec));
  const auto work = g.add_transform("work", dataflow::passthrough_unit(),
                                    dataflow::constant_cost(2.0));
  const auto snk = g.add_sink("snk");
  g.connect(src, work).connect(work, snk);
  return g;
}

runtime::SwarmConfig batched_config(bool enabled) {
  runtime::SwarmConfig config;
  config.worker.batching.enabled = enabled;
  // Five 100 Hz tuples fit a window, so batches actually form.
  config.worker.batching.max_delay = millis(50);
  return config;
}

TEST(Messages, DataBatchRoundTrip) {
  DataBatchMsg msg;
  msg.append_frame(Bytes{1, 2, 3});
  msg.append_frame(Bytes{});
  msg.append_frame(Bytes{9});
  const DataBatchMsg back =
      dataflow::decode_from<DataBatchMsg>(dataflow::encode_to_bytes(msg));
  ASSERT_EQ(back.size(), 3u);
  const auto frame_bytes = [&](std::size_t i) {
    const auto f = back.frame(i);
    return Bytes(f.begin(), f.end());
  };
  EXPECT_EQ(frame_bytes(0), (Bytes{1, 2, 3}));
  EXPECT_TRUE(back.frame(1).empty());
  EXPECT_EQ(frame_bytes(2), Bytes{9});
}

TEST(Messages, CorruptBatchThrows) {
  EXPECT_THROW(dataflow::decode_from<DataBatchMsg>(Bytes{0x05, 0x01}),
               WireFormatError);
}

class BatchingTest : public ::testing::Test {
 protected:
  std::size_t run(bool batching, std::uint64_t frames = 300) {
    Simulator sim;
    runtime::Swarm swarm{sim, batched_config(batching)};
    const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
    const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});
    swarm.launch_master(a, sensor_app(100.0, frames));
    swarm.launch_worker(b);
    sim.run_for(seconds(1));
    swarm.start();
    sim.run_for(seconds(10));
    swarm.shutdown();
    sim.run_for(seconds(1));
    delivered_ = swarm.metrics().frames_arrived();
    mean_latency_ = swarm.metrics().latency_stats().mean();
    return swarm.medium().delivered_messages();
  }

  std::size_t delivered_ = 0;
  double mean_latency_ = 0.0;
};

TEST_F(BatchingTest, AllTuplesStillDelivered) {
  run(true);
  EXPECT_EQ(delivered_, 300u);
}

TEST_F(BatchingTest, FarFewerWireMessages) {
  const auto unbatched = run(false);
  const auto delivered_unbatched = delivered_;
  const auto batched = run(true);
  EXPECT_EQ(delivered_, delivered_unbatched);
  // 100 Hz with a 10 ms window or 8-tuple cap: several-fold reduction in
  // radio messages (data only; control/ACK traffic unchanged).
  EXPECT_LT(double(batched), 0.7 * double(unbatched));
}

TEST_F(BatchingTest, AddsBoundedLatency) {
  run(false);
  const double base = mean_latency_;
  run(true);
  // Batching adds at most max_delay (50 ms here) of hold time per network
  // hop; this pipeline has two (source->worker, worker->sink).
  EXPECT_LT(mean_latency_, base + 2.0 * 50.0 + 10.0);
  EXPECT_GT(mean_latency_, base);  // It is not free.
}

TEST_F(BatchingTest, FlushOnCount) {
  // With a huge window, only the 8-tuple cap can trigger sends; everything
  // must still arrive.
  Simulator sim;
  runtime::SwarmConfig config;
  config.worker.batching.enabled = true;
  config.worker.batching.max_delay = seconds(60);
  runtime::Swarm swarm{sim, config};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});
  swarm.launch_master(a, sensor_app(100.0, 160));  // 20 full batches.
  swarm.launch_worker(b);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(5));
  EXPECT_EQ(swarm.metrics().frames_arrived(), 160u);
}

TEST_F(BatchingTest, FlushOnTimerForStragglerTuples) {
  // 3 tuples then silence: only the timer can flush them.
  Simulator sim;
  runtime::Swarm swarm{sim, batched_config(true)};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});
  swarm.launch_master(a, sensor_app(100.0, 3));
  swarm.launch_worker(b);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(2));
  EXPECT_EQ(swarm.metrics().frames_arrived(), 3u);
}

TEST_F(BatchingTest, SurvivesPeerLeaving) {
  Simulator sim;
  runtime::Swarm swarm{sim, batched_config(true)};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});
  const auto c = swarm.add_device(device::profile_I(), {2.5, 0.0});
  swarm.launch_master(a, sensor_app(100.0));
  swarm.launch_worker(b);
  swarm.launch_worker(c);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(3));
  swarm.leave_abruptly(c);
  sim.run_for(seconds(5));
  const auto t = sim.now();
  EXPECT_GT(swarm.metrics().throughput_fps(t - seconds(2), t), 60.0);
}

}  // namespace
}  // namespace swing::runtime
