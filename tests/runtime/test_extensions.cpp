// Tests for the interference model and tuple-TTL staleness shedding.
#include <gtest/gtest.h>

#include "device/profile.h"
#include "net/medium.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

namespace swing::runtime {
namespace {

dataflow::AppGraph tiny_app(double rate, double cost_ms,
                            std::uint64_t max = 0) {
  dataflow::AppGraph g;
  dataflow::SourceSpec spec;
  spec.rate_per_s = rate;
  spec.max_tuples = max;
  spec.generate = [](TupleId id, SimTime, Rng&) {
    dataflow::Tuple t;
    t.set("payload", dataflow::Blob{6000, id.value()});
    return t;
  };
  const auto src = g.add_source("src", std::move(spec));
  const auto work = g.add_transform("work", dataflow::passthrough_unit(),
                                    dataflow::constant_cost(cost_ms));
  const auto snk = g.add_sink("snk");
  g.connect(src, work).connect(work, snk);
  return g;
}

// --- Interference -----------------------------------------------------

TEST(Interference, StealsAirtimeProportionally) {
  auto transfer_time = [](double duty) {
    Simulator sim;
    net::MediumConfig config;
    config.interference.duty = duty;
    config.interference.burst = millis(5);
    net::Medium medium{sim, config};
    medium.attach(DeviceId{0}, net::Position{1.0, 0.0});
    medium.attach(DeviceId{1}, net::Position{2.0, 0.0});
    SimTime done;
    medium.send(DeviceId{0}, DeviceId{1}, 200000, [&] { done = sim.now(); });
    sim.run_until(SimTime{} + seconds(30));
    return done.seconds();
  };
  const double quiet = transfer_time(0.0);
  const double busy = transfer_time(0.5);
  // Half the channel gone: about twice the completion time.
  EXPECT_GT(busy / quiet, 1.6);
  EXPECT_LT(busy / quiet, 2.6);
}

TEST(Interference, SwarmSurvivesDaytimeChannel) {
  Simulator sim;
  SwarmConfig config;
  config.medium.interference.duty = 0.3;
  Swarm swarm{sim, config};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});
  swarm.launch_master(a, tiny_app(10.0, 20.0));
  swarm.launch_worker(b);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(10));
  const auto t = sim.now();
  // Light traffic: throughput holds, latency absorbs the deferrals.
  EXPECT_GT(swarm.metrics().throughput_fps(t - seconds(5), t), 9.0);
}

TEST(Interference, ZeroDutyIsTheQuietNight) {
  Simulator sim;
  net::MediumConfig config;  // duty = 0.
  net::Medium medium{sim, config};
  medium.attach(DeviceId{0}, net::Position{1.0, 0.0});
  medium.attach(DeviceId{1}, net::Position{2.0, 0.0});
  bool delivered = false;
  medium.send(DeviceId{0}, DeviceId{1}, 1500, [&] { delivered = true; });
  sim.run_for(millis(10));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(sim.queued(), 0u);  // No interference machinery scheduled.
}

// --- Tuple TTL ----------------------------------------------------------

TEST(TupleTtl, StaleTuplesShedBeforeCompute) {
  // Overloaded slow device: without a TTL its queue serves frames that are
  // seconds old; with one, stale frames are shed on arrival.
  Simulator sim;
  SwarmConfig config;
  config.worker.tuple_ttl = millis(800);
  config.worker.compute_backlog_cap = 1000;
  Swarm swarm{sim, config};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_E(), {2.0, 0.0});
  swarm.launch_master(a, tiny_app(10.0, 100.0));  // E does ~2 FPS.
  swarm.launch_worker(b);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(20));

  EXPECT_GT(swarm.metrics().drops(core::DropReason::kStaleTtl), 50u);
  // Everything that *was* delivered is fresh.
  for (const auto& f : swarm.metrics().frames()) {
    EXPECT_LT(f.e2e_ms(), 1500.0);
  }
}

TEST(TupleTtl, DisabledByDefault) {
  Simulator sim;
  SwarmConfig config;
  config.worker.compute_backlog_cap = 1000;
  Swarm swarm{sim, config};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_E(), {2.0, 0.0});
  swarm.launch_master(a, tiny_app(10.0, 100.0));
  swarm.launch_worker(b);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(20));
  EXPECT_EQ(swarm.metrics().drops(core::DropReason::kStaleTtl), 0u);
  // Queues grow instead: some frames arrive very late.
  EXPECT_GT(swarm.metrics().latency_stats().max(), 3000.0);
}

TEST(TupleTtl, FreshTuplesUnaffected) {
  Simulator sim;
  SwarmConfig config;
  config.worker.tuple_ttl = seconds(2.0);
  Swarm swarm{sim, config};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});
  swarm.launch_master(a, tiny_app(10.0, 20.0, 80));
  swarm.launch_worker(b);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(12));
  swarm.shutdown();
  EXPECT_EQ(swarm.metrics().frames_arrived(), 80u);
  EXPECT_EQ(swarm.metrics().drops(core::DropReason::kStaleTtl), 0u);
}

}  // namespace
}  // namespace swing::runtime
