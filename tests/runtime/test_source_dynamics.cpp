// Source-rate dynamism (paper §III: "changes in the input data rate"):
// piecewise rate schedules and Poisson (bursty) arrivals.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "device/profile.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

namespace swing::runtime {
namespace {

dataflow::AppGraph app_with_source(dataflow::SourceSpec spec) {
  dataflow::AppGraph g;
  const auto src = g.add_source("src", std::move(spec));
  const auto work = g.add_transform("work", dataflow::passthrough_unit(),
                                    dataflow::constant_cost(1.0));
  const auto snk = g.add_sink("snk");
  g.connect(src, work).connect(work, snk);
  return g;
}

dataflow::SourceSpec base_spec(double rate) {
  dataflow::SourceSpec spec;
  spec.rate_per_s = rate;
  spec.generate = [](TupleId id, SimTime, Rng&) {
    dataflow::Tuple t;
    t.set("payload", dataflow::Blob{500, id.value()});
    return t;
  };
  return spec;
}

struct Rig {
  Rig(dataflow::AppGraph graph) : swarm(sim) {
    const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
    const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});
    swarm.launch_master(a, std::move(graph));
    swarm.launch_worker(b);
    sim.run_for(seconds(1));
    swarm.start();
    start = sim.now();
  }

  double fps_between(double from_s, double to_s) {
    return swarm.metrics().throughput_fps(start + seconds(from_s),
                                          start + seconds(to_s));
  }

  Simulator sim;
  runtime::Swarm swarm;
  SimTime start;
};

TEST(SourceDynamics, RateScheduleSwitchesRates) {
  dataflow::SourceSpec spec = base_spec(5.0);
  spec.rate_schedule = {{seconds(10), 20.0}, {seconds(20), 2.0}};
  Rig rig{app_with_source(std::move(spec))};
  rig.sim.run_for(seconds(30));

  EXPECT_NEAR(rig.fps_between(1, 9), 5.0, 1.0);
  EXPECT_NEAR(rig.fps_between(11, 19), 20.0, 2.0);
  EXPECT_NEAR(rig.fps_between(22, 30), 2.0, 1.0);
}

TEST(SourceDynamics, ScheduleSurvivesStopStart) {
  dataflow::SourceSpec spec = base_spec(5.0);
  spec.rate_schedule = {{seconds(4), 20.0}};
  Rig rig{app_with_source(std::move(spec))};
  rig.sim.run_for(seconds(2));
  rig.swarm.stop();
  rig.sim.run_for(seconds(4));  // The schedule fires while stopped.
  rig.swarm.start();
  rig.sim.run_for(seconds(10));
  // After restart the new 20/s rate applies.
  EXPECT_NEAR(rig.fps_between(8, 15), 20.0, 2.5);
}

TEST(SourceDynamics, PoissonMeanRateConverges) {
  dataflow::SourceSpec spec = base_spec(20.0);
  spec.poisson = true;
  Rig rig{app_with_source(std::move(spec))};
  rig.sim.run_for(seconds(60));
  EXPECT_NEAR(rig.fps_between(1, 59), 20.0, 2.0);
}

TEST(SourceDynamics, PoissonIsBurstierThanPeriodic) {
  auto gap_cv = [](bool poisson) {
    dataflow::SourceSpec spec = base_spec(20.0);
    spec.poisson = poisson;
    Rig rig{app_with_source(std::move(spec))};
    rig.sim.run_for(seconds(40));
    // Coefficient of variation of sink inter-arrival gaps.
    OnlineStats gaps;
    const auto& points = rig.swarm.metrics().arrivals().points();
    for (std::size_t i = 1; i < points.size(); ++i) {
      gaps.add((points[i].time - points[i - 1].time).millis());
    }
    return gaps.stddev() / gaps.mean();
  };
  EXPECT_GT(gap_cv(true), 2.0 * gap_cv(false));
}

TEST(SourceDynamics, QueueingRespondsToRateStep) {
  // Step the rate past the worker's capacity: latency explodes, then
  // recovers when the rate steps back down (Fig. 2c's mechanism, live).
  dataflow::SourceSpec spec = base_spec(5.0);
  spec.rate_schedule = {{seconds(10), 40.0}, {seconds(20), 5.0}};
  dataflow::AppGraph g;
  const auto src = g.add_source("src", std::move(spec));
  const auto work = g.add_transform("work", dataflow::passthrough_unit(),
                                    dataflow::constant_cost(60.0));
  const auto snk = g.add_sink("snk");
  g.connect(src, work).connect(work, snk);
  Rig rig{std::move(g)};
  rig.sim.run_for(seconds(45));

  const auto calm =
      rig.swarm.metrics().latency_stats(rig.start + seconds(1),
                                        rig.start + seconds(9));
  const auto overloaded =
      rig.swarm.metrics().latency_stats(rig.start + seconds(14),
                                        rig.start + seconds(20));
  const auto recovered =
      rig.swarm.metrics().latency_stats(rig.start + seconds(35),
                                        rig.start + seconds(45));
  EXPECT_GT(overloaded.mean(), 3.0 * calm.mean());
  EXPECT_LT(recovered.mean(), 2.0 * calm.mean());
}

}  // namespace
}  // namespace swing::runtime
