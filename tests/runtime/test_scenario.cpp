#include "runtime/scenario.h"

#include <gtest/gtest.h>

#include "apps/face_recognition.h"
#include "apps/testbed.h"
#include "device/profile.h"

namespace swing::runtime {
namespace {

struct ScenarioRig {
  ScenarioRig() {
    apps::TestbedConfig config;
    config.workers = {"B", "G", "H"};
    config.weak_signal_bcd = false;
    bed = std::make_unique<apps::Testbed>(config);
  }

  void launch_partial(std::vector<std::string> initial) {
    auto& swarm = bed->swarm();
    swarm.launch_master(bed->id("A"), apps::face_recognition_graph());
    for (const auto& name : initial) swarm.launch_worker(bed->id(name));
    bed->sim().run_for(seconds(1));
    swarm.start();
  }

  std::unique_ptr<apps::Testbed> bed;
};

TEST(Scenario, ActionsFireAtDeclaredTimes) {
  ScenarioRig rig;
  rig.launch_partial({"B"});
  auto& swarm = rig.bed->swarm();

  std::vector<double> fired;
  Scenario scenario{swarm};
  scenario.at(seconds(3), "first", [&](Swarm& s) {
    fired.push_back((s.sim().now()).seconds());
  });
  scenario.at(seconds(7), "second", [&](Swarm& s) {
    fired.push_back((s.sim().now()).seconds());
  });
  const double t0 = rig.bed->sim().now().seconds();
  scenario.run_for(seconds(10));

  ASSERT_EQ(fired.size(), 2u);
  EXPECT_NEAR(fired[0] - t0, 3.0, 1e-9);
  EXPECT_NEAR(fired[1] - t0, 7.0, 1e-9);
}

TEST(Scenario, SamplesAlignWithEvents) {
  ScenarioRig rig;
  rig.launch_partial({"B"});
  Scenario scenario{rig.bed->swarm()};
  scenario.join_at(seconds(5), rig.bed->id("G"), "G joins");
  scenario.run_for(seconds(12));

  const auto& samples = scenario.samples();
  ASSERT_GE(samples.size(), 11u);
  bool labelled = false;
  for (const auto& s : samples) {
    if (s.label == "G joins") {
      labelled = true;
      EXPECT_NEAR(s.t_s, 6.0, 1.1);  // Label shows on the next sample.
    }
  }
  EXPECT_TRUE(labelled);
}

TEST(Scenario, JoinHelperRaisesThroughput) {
  ScenarioRig rig;
  rig.launch_partial({"B"});  // B alone: ~10 FPS.
  Scenario scenario{rig.bed->swarm()};
  scenario.join_at(seconds(6), rig.bed->id("G"))
      .join_at(seconds(6), rig.bed->id("H"));
  scenario.run_for(seconds(20));

  const auto& samples = scenario.samples();
  double before = 0.0, after = 0.0;
  int n_before = 0, n_after = 0;
  for (const auto& s : samples) {
    if (s.t_s <= 5.0) {
      before += s.fps;
      ++n_before;
    } else if (s.t_s >= 12.0) {
      after += s.fps;
      ++n_after;
    }
  }
  ASSERT_GT(n_before, 0);
  ASSERT_GT(n_after, 0);
  EXPECT_LT(before / n_before, 14.0);
  EXPECT_GT(after / n_after, 20.0);
}

TEST(Scenario, LeaveAndZoneHelpers) {
  ScenarioRig rig;
  rig.launch_partial({"B", "G", "H"});
  auto& swarm = rig.bed->swarm();
  Scenario scenario{swarm};
  scenario.jump_rssi_at(seconds(4), rig.bed->id("B"), -78.0)
      .leave_abruptly_at(seconds(8), rig.bed->id("G"))
      .background_load_at(seconds(8), rig.bed->id("H"), 0.5);
  scenario.run_for(seconds(15));

  EXPECT_DOUBLE_EQ(swarm.medium().rssi(rig.bed->id("B")), -78.0);
  EXPECT_FALSE(swarm.master()->is_member(rig.bed->id("G")));
  EXPECT_DOUBLE_EQ(swarm.device(rig.bed->id("H")).background_load(), 0.5);
}

TEST(Scenario, TimelineReportsDeclaredEvents) {
  ScenarioRig rig;
  rig.launch_partial({"B"});
  Scenario scenario{rig.bed->swarm()};
  scenario.join_at(seconds(2), rig.bed->id("G"), "G");
  scenario.at(seconds(4), "custom", [](Swarm&) {});
  const auto timeline = scenario.timeline();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].label, "G");
  EXPECT_EQ(timeline[1].label, "custom");
  EXPECT_EQ(timeline[1].when, seconds(4));
}

TEST(Scenario, DoubleArmThrows) {
  ScenarioRig rig;
  rig.launch_partial({"B"});
  Scenario scenario{rig.bed->swarm()};
  scenario.arm();
  EXPECT_THROW(scenario.arm(), std::logic_error);
}

}  // namespace
}  // namespace swing::runtime
