#include "runtime/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace swing::runtime {
namespace {

using dataflow::Tuple;

Tuple tuple(std::uint64_t id) { return Tuple{TupleId{id}, SimTime{}}; }

class Capture {
 public:
  ReorderBuffer::PlayFn fn() {
    return [this](const Tuple& t, SimTime) { ids.push_back(t.id().value()); };
  }
  std::vector<std::uint64_t> ids;
};

TEST(ReorderBuffer, CapacityForRateAndSpan) {
  EXPECT_EQ(ReorderBuffer::capacity_for(24.0, seconds(1.0)), 24u);
  EXPECT_EQ(ReorderBuffer::capacity_for(24.0, seconds(0.5)), 12u);
  EXPECT_EQ(ReorderBuffer::capacity_for(0.1, seconds(1.0)), 1u);  // Min 1.
}

TEST(ReorderBuffer, HoldsUntilCapacityExceeded) {
  Capture cap;
  ReorderBuffer buf{3, cap.fn()};
  buf.push(tuple(2), SimTime{});
  buf.push(tuple(1), SimTime{});
  buf.push(tuple(3), SimTime{});
  EXPECT_TRUE(cap.ids.empty());
  buf.push(tuple(4), SimTime{});  // Overflow: smallest id plays.
  EXPECT_EQ(cap.ids, std::vector<std::uint64_t>{1});
  EXPECT_EQ(buf.buffered(), 3u);
}

TEST(ReorderBuffer, PlaysInIdOrder) {
  Capture cap;
  ReorderBuffer buf{2, cap.fn()};
  for (std::uint64_t id : {5, 3, 1, 4, 2, 6, 7}) {
    buf.push(tuple(id), SimTime{});
  }
  buf.flush(SimTime{});
  auto sorted = cap.ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(cap.ids, sorted);
}

TEST(ReorderBuffer, FlushEmitsEverything) {
  Capture cap;
  ReorderBuffer buf{100, cap.fn()};
  buf.push(tuple(2), SimTime{});
  buf.push(tuple(1), SimTime{});
  buf.flush(SimTime{});
  EXPECT_EQ(cap.ids, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(buf.buffered(), 0u);
  EXPECT_EQ(buf.played(), 2u);
}

TEST(ReorderBuffer, LateTupleDropped) {
  Capture cap;
  ReorderBuffer buf{1, cap.fn()};
  buf.push(tuple(5), SimTime{});
  buf.push(tuple(6), SimTime{});  // Overflow plays 5.
  ASSERT_EQ(cap.ids, std::vector<std::uint64_t>{5});
  buf.push(tuple(3), SimTime{});  // 3 < 5: too late to display.
  EXPECT_EQ(buf.late_drops(), 1u);
  buf.flush(SimTime{});
  EXPECT_EQ(cap.ids, (std::vector<std::uint64_t>{5, 6}));
}

// swing-chaos regression: a retransmitted duplicate arriving after its
// original was already released must be classified as a *duplicate*
// (harmless — the sink saw the tuple) and not as a late drop (which the
// ledger would book as data loss and the glitch counters would show).
TEST(ReorderBuffer, RetransmittedDuplicateAfterReleaseIsDedupNotLate) {
  Capture cap;
  std::vector<std::uint64_t> lates;
  std::vector<std::uint64_t> dups;
  ReorderBuffer buf{
      2, cap.fn(),
      [&](const Tuple& t) { lates.push_back(t.id().value()); },
      [&](const Tuple& t) { dups.push_back(t.id().value()); }};
  buf.push(tuple(5), SimTime{});
  buf.push(tuple(6), SimTime{});
  buf.push(tuple(7), SimTime{});  // Overflow releases 5.
  ASSERT_EQ(cap.ids, std::vector<std::uint64_t>{5});

  buf.push(tuple(5), SimTime{});  // Retransmit raced the original: dup.
  EXPECT_EQ(dups, std::vector<std::uint64_t>{5});
  EXPECT_EQ(buf.dup_drops(), 1u);
  EXPECT_EQ(buf.late_drops(), 0u);
  EXPECT_TRUE(lates.empty());

  buf.push(tuple(3), SimTime{});  // Never played before: genuinely late.
  EXPECT_EQ(lates, std::vector<std::uint64_t>{3});
  EXPECT_EQ(buf.late_drops(), 1u);
  EXPECT_EQ(buf.dup_drops(), 1u);

  buf.flush(SimTime{});
  EXPECT_EQ(cap.ids, (std::vector<std::uint64_t>{5, 6, 7}));
}

TEST(ReorderBuffer, DuplicateMemoryIsBounded) {
  Capture cap;
  ReorderBuffer buf{2, cap.fn()};
  // Play a long run; the played-id memory must not grow without bound.
  for (std::uint64_t id = 0; id < 1000; ++id) {
    buf.push(tuple(id), SimTime{});
  }
  buf.flush(SimTime{});
  // A duplicate of a recently played id still dedups...
  buf.push(tuple(999), SimTime{});
  EXPECT_EQ(buf.dup_drops(), 1u);
  // ...while one far outside the memory window degrades to a late drop —
  // the bounded-memory tradeoff, not data loss (the original played).
  buf.push(tuple(1), SimTime{});
  EXPECT_EQ(buf.late_drops(), 1u);
}

TEST(ReorderBuffer, ZeroCapacityBehavesAsOne) {
  Capture cap;
  ReorderBuffer buf{0, cap.fn()};
  buf.push(tuple(1), SimTime{});
  EXPECT_EQ(buf.capacity(), 1u);
}

// Property: for any arrival permutation with bounded displacement <= the
// buffer capacity, playback is the fully sorted sequence with no drops.
class ReorderPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReorderPropertyTest, BoundedDisplacementFullyOrdered) {
  const std::uint64_t seed = GetParam();
  Rng rng{seed};
  const std::size_t capacity = 24;
  const std::size_t n = 500;

  // Build an arrival order with bounded displacement: sorting ids by a key
  // perturbed by less than half the capacity displaces each element by at
  // most capacity/2 positions.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keyed(n);
  for (std::size_t i = 0; i < n; ++i) {
    keyed[i] = {i + rng.uniform_int(capacity / 2), i};
  }
  std::stable_sort(keyed.begin(), keyed.end());
  std::vector<std::uint64_t> arrival(n);
  for (std::size_t i = 0; i < n; ++i) arrival[i] = keyed[i].second;

  Capture cap;
  ReorderBuffer buf{capacity, cap.fn()};
  for (std::uint64_t id : arrival) buf.push(tuple(id), SimTime{});
  buf.flush(SimTime{});

  ASSERT_EQ(cap.ids.size(), n);
  EXPECT_EQ(buf.late_drops(), 0u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(cap.ids[i], i);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: playback ids are strictly increasing regardless of arrival
// chaos (unordered beyond capacity: some drops allowed, order never broken).
class ReorderChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReorderChaosTest, PlaybackAlwaysMonotone) {
  Rng rng{GetParam()};
  ReorderBuffer::PlayFn noop;
  std::vector<std::uint64_t> played;
  ReorderBuffer buf{8, [&](const Tuple& t, SimTime) {
    played.push_back(t.id().value());
  }};
  std::vector<std::uint64_t> ids(300);
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  // Full shuffle: displacement unbounded.
  for (std::size_t i = ids.size() - 1; i > 0; --i) {
    std::swap(ids[i], ids[rng.uniform_int(i + 1)]);
  }
  for (std::uint64_t id : ids) buf.push(tuple(id), SimTime{});
  buf.flush(SimTime{});
  for (std::size_t i = 1; i < played.size(); ++i) {
    EXPECT_GT(played[i], played[i - 1]);
  }
  EXPECT_EQ(played.size() + buf.late_drops(), ids.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderChaosTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace swing::runtime
