// Worker unit tests: drive one Worker directly with hand-crafted protocol
// messages (no Master, no discovery) and observe its behaviour at the
// transport boundary. Complements the Swarm-level integration tests with
// precise protocol-sequencing coverage.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "dataflow/codec.h"
#include "dataflow/function_unit.h"
#include "device/profile.h"
#include "runtime/worker.h"
#include "sim/simulator.h"

namespace swing::runtime {
namespace {

class WorkerUnitTest : public ::testing::Test {
 protected:
  WorkerUnitTest()
      : medium_(sim_),
        transport_(sim_, medium_),
        device_(sim_, worker_id_, device::profile_H(), Rng{1}) {
    medium_.attach(master_id_, net::Position{1.0, 0.0});
    medium_.attach(worker_id_, net::Position{2.0, 0.0});
    medium_.attach(peer_id_, net::Position{2.5, 0.0});
    // Capture everything the worker sends to "master" and "peer".
    transport_.register_device(master_id_, [this](const net::Message& m) {
      outbox_[master_id_.value()].push_back(m);
    });
    transport_.register_device(peer_id_, [this](const net::Message& m) {
      outbox_[peer_id_.value()].push_back(m);
    });
  }

  dataflow::AppGraph one_stage_graph() {
    dataflow::AppGraph g;
    dataflow::SourceSpec spec;
    spec.rate_per_s = 10.0;
    spec.generate = [](TupleId, SimTime, Rng&) { return dataflow::Tuple{}; };
    const auto src = g.add_source("src", std::move(spec));
    const auto work = g.add_transform("work", dataflow::passthrough_unit(),
                                      dataflow::constant_cost(10.0));
    const auto snk = g.add_sink("snk");
    g.connect(src, work).connect(work, snk);
    return g;
  }

  std::unique_ptr<Worker> make_worker(const dataflow::AppGraph& graph) {
    return std::make_unique<Worker>(sim_, device_, transport_, graph,
                                    config_, Rng{7}, metrics_);
  }

  // Delivers a message object to the worker as if it came off the wire.
  net::Message msg_from(DeviceId src, MsgType type, Bytes payload) {
    net::Message m;
    m.src = src;
    m.dst = worker_id_;
    m.type = std::uint8_t(type);
    m.payload = std::move(payload);
    m.sent_at = sim_.now();
    return m;
  }

  std::vector<net::Message> sent_to(DeviceId id, MsgType type) {
    std::vector<net::Message> out;
    for (const auto& m : outbox_[id.value()]) {
      if (MsgType(m.type) == type) out.push_back(m);
    }
    return out;
  }

  DataMsg make_data(InstanceId src_inst, InstanceId dst_inst,
                    TupleId tuple_id) {
    DataMsg data;
    data.src_instance = src_inst;
    data.src_device = master_id_;
    data.dst_instance = dst_inst;
    data.sent_ns = sim_.now().nanos();
    dataflow::Tuple t{tuple_id, sim_.now()};
    t.set("payload", dataflow::Blob{1000, tuple_id.value()});
    data.tuple = t;
    data.tuple_wire_size = t.wire_size();
    return data;
  }

  Simulator sim_;
  net::Medium medium_;
  net::Transport transport_;
  DeviceId master_id_{0}, worker_id_{1}, peer_id_{2};
  device::Device device_{sim_, DeviceId{1}, device::profile_H(), Rng{1}};
  WorkerConfig config_{};
  MetricsCollector metrics_;
  std::map<std::uint64_t, std::vector<net::Message>> outbox_;
};

TEST_F(WorkerUnitTest, HelloSentOnConnect) {
  const auto graph = one_stage_graph();
  auto worker = make_worker(graph);
  Worker& w = *worker;
  w.connect_to_master(master_id_);
  sim_.run_for(millis(50));
  EXPECT_EQ(sent_to(master_id_, MsgType::kHello).size(), 1u);
}

TEST_F(WorkerUnitTest, HeartbeatsFlowAfterConnect) {
  const auto graph = one_stage_graph();
  auto worker = make_worker(graph);
  Worker& w = *worker;
  w.connect_to_master(master_id_);
  sim_.run_for(seconds(7));
  // 2 s cadence: ~3 heartbeats in 7 s.
  EXPECT_GE(sent_to(master_id_, MsgType::kHeartbeat).size(), 3u);
}

TEST_F(WorkerUnitTest, DeployActivatesInstance) {
  const auto graph = one_stage_graph();
  auto worker = make_worker(graph);
  Worker& w = *worker;
  DeployMsg deploy;
  deploy.assignments.push_back(
      {InstanceInfo{InstanceId{10}, graph.operators()[1].id, worker_id_},
       {}});
  w.handle_message(msg_from(master_id_, MsgType::kDeploy,
                            dataflow::encode_to_bytes(deploy)));
  EXPECT_EQ(w.instance_count(), 1u);
}

TEST_F(WorkerUnitTest, DataProcessedAndAcked) {
  const auto graph = one_stage_graph();
  auto worker = make_worker(graph);
  Worker& w = *worker;
  DeployMsg deploy;
  deploy.assignments.push_back(
      {InstanceInfo{InstanceId{10}, graph.operators()[1].id, worker_id_},
       {}});
  w.handle_message(msg_from(master_id_, MsgType::kDeploy, dataflow::encode_to_bytes(deploy)));

  const auto data = make_data(InstanceId{1}, InstanceId{10}, TupleId{5});
  w.handle_message(msg_from(master_id_, MsgType::kData, dataflow::encode_to_bytes(data)));
  sim_.run_for(millis(200));

  EXPECT_EQ(w.tuples_processed(), 1u);
  const auto acks = sent_to(master_id_, MsgType::kAck);
  ASSERT_EQ(acks.size(), 1u);
  const AckMsg ack = dataflow::decode_from<AckMsg>(acks[0].payload);
  EXPECT_EQ(ack.tuple, TupleId{5});
  EXPECT_EQ(ack.from_instance, InstanceId{10});
  EXPECT_EQ(ack.to_instance, InstanceId{1});
  EXPECT_EQ(ack.echoed_sent_ns, data.sent_ns);
  EXPECT_GT(ack.processing_ms, 1.0);
  EXPECT_GT(ack.battery_fraction, 0.9);
}

TEST_F(WorkerUnitTest, DataBeforeDeployReplaysAfterActivation) {
  const auto graph = one_stage_graph();
  auto worker = make_worker(graph);
  Worker& w = *worker;
  // Data races ahead of the deploy...
  const auto data = make_data(InstanceId{1}, InstanceId{10}, TupleId{0});
  w.handle_message(msg_from(master_id_, MsgType::kData, dataflow::encode_to_bytes(data)));
  sim_.run_for(millis(50));
  EXPECT_EQ(w.tuples_processed(), 0u);

  // ...and is processed once the instance exists.
  DeployMsg deploy;
  deploy.assignments.push_back(
      {InstanceInfo{InstanceId{10}, graph.operators()[1].id, worker_id_},
       {}});
  w.handle_message(msg_from(master_id_, MsgType::kDeploy, dataflow::encode_to_bytes(deploy)));
  sim_.run_for(millis(200));
  EXPECT_EQ(w.tuples_processed(), 1u);
}

TEST_F(WorkerUnitTest, EmittedTupleForwardedToDownstreamPeer) {
  const auto graph = one_stage_graph();
  auto worker = make_worker(graph);
  Worker& w = *worker;
  DeployMsg deploy;
  DeployMsg::Assignment assignment;
  assignment.self =
      InstanceInfo{InstanceId{10}, graph.operators()[1].id, worker_id_};
  assignment.downstreams.push_back(
      InstanceInfo{InstanceId{20}, graph.operators()[2].id, peer_id_});
  deploy.assignments.push_back(assignment);
  w.handle_message(msg_from(master_id_, MsgType::kDeploy, dataflow::encode_to_bytes(deploy)));

  const auto data = make_data(InstanceId{1}, InstanceId{10}, TupleId{3});
  w.handle_message(msg_from(master_id_, MsgType::kData, dataflow::encode_to_bytes(data)));
  sim_.run_for(millis(300));

  const auto forwarded = sent_to(peer_id_, MsgType::kData);
  ASSERT_EQ(forwarded.size(), 1u);
  const DataMsg out = dataflow::decode_from<DataMsg>(forwarded[0].payload);
  EXPECT_EQ(out.dst_instance, InstanceId{20});
  EXPECT_EQ(out.src_instance, InstanceId{10});
  EXPECT_EQ(out.src_device, worker_id_);
  // The forwarded tuple keeps its identity.
  EXPECT_EQ(out.tuple.id(), TupleId{3});
  // Accumulated breakdown includes this stage's processing.
  EXPECT_GT(out.accumulated.processing_ms, 1.0);
}

TEST_F(WorkerUnitTest, RemoveDownstreamStopsForwarding) {
  const auto graph = one_stage_graph();
  auto worker = make_worker(graph);
  Worker& w = *worker;
  DeployMsg deploy;
  DeployMsg::Assignment assignment;
  assignment.self =
      InstanceInfo{InstanceId{10}, graph.operators()[1].id, worker_id_};
  assignment.downstreams.push_back(
      InstanceInfo{InstanceId{20}, graph.operators()[2].id, peer_id_});
  deploy.assignments.push_back(assignment);
  w.handle_message(msg_from(master_id_, MsgType::kDeploy, dataflow::encode_to_bytes(deploy)));

  RouteUpdateMsg removal{InstanceId{},
                         InstanceInfo{InstanceId{20},
                                      graph.operators()[2].id, peer_id_}};
  w.handle_message(
      msg_from(master_id_, MsgType::kRemoveDownstream, dataflow::encode_to_bytes(removal)));

  const auto data = make_data(InstanceId{1}, InstanceId{10}, TupleId{4});
  w.handle_message(msg_from(master_id_, MsgType::kData, dataflow::encode_to_bytes(data)));
  sim_.run_for(millis(300));
  EXPECT_TRUE(sent_to(peer_id_, MsgType::kData).empty());
}

TEST_F(WorkerUnitTest, ShutdownStopsProcessing) {
  const auto graph = one_stage_graph();
  auto worker = make_worker(graph);
  Worker& w = *worker;
  DeployMsg deploy;
  deploy.assignments.push_back(
      {InstanceInfo{InstanceId{10}, graph.operators()[1].id, worker_id_},
       {}});
  w.handle_message(msg_from(master_id_, MsgType::kDeploy, dataflow::encode_to_bytes(deploy)));
  w.shutdown();
  EXPECT_FALSE(w.alive());
  const auto data = make_data(InstanceId{1}, InstanceId{10}, TupleId{9});
  w.handle_message(msg_from(master_id_, MsgType::kData, dataflow::encode_to_bytes(data)));
  sim_.run_for(millis(200));
  EXPECT_EQ(w.tuples_processed(), 0u);
}

TEST_F(WorkerUnitTest, LeaveSendsBye) {
  const auto graph = one_stage_graph();
  auto worker = make_worker(graph);
  Worker& w = *worker;
  w.connect_to_master(master_id_);
  sim_.run_for(millis(10));
  w.leave();
  sim_.run_for(millis(50));
  EXPECT_EQ(sent_to(master_id_, MsgType::kBye).size(), 1u);
}

}  // namespace
}  // namespace swing::runtime
