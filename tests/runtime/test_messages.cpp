#include "runtime/messages.h"

#include <gtest/gtest.h>

#include "dataflow/codec.h"

namespace swing::runtime {
namespace {

TEST(Messages, InstanceInfoRoundTrip) {
  const InstanceInfo info{InstanceId{3}, OperatorId{1}, DeviceId{7}};
  ByteWriter w;
  info.encode(w);
  ByteReader r{w.data()};
  EXPECT_EQ(InstanceInfo::decode(r), info);
}

TEST(Messages, DeployRoundTrip) {
  DeployMsg msg;
  DeployMsg::Assignment a;
  a.self = {InstanceId{1}, OperatorId{2}, DeviceId{3}};
  a.downstreams.push_back({InstanceId{4}, OperatorId{5}, DeviceId{6}});
  a.downstreams.push_back({InstanceId{7}, OperatorId{8}, DeviceId{9}});
  msg.assignments.push_back(a);
  DeployMsg::Assignment b;
  b.self = {InstanceId{10}, OperatorId{11}, DeviceId{3}};
  msg.assignments.push_back(b);

  const DeployMsg back = dataflow::decode_from<DeployMsg>(dataflow::encode_to_bytes(msg));
  ASSERT_EQ(back.assignments.size(), 2u);
  EXPECT_EQ(back.assignments[0].self, a.self);
  ASSERT_EQ(back.assignments[0].downstreams.size(), 2u);
  EXPECT_EQ(back.assignments[0].downstreams[1], a.downstreams[1]);
  EXPECT_TRUE(back.assignments[1].downstreams.empty());
}

TEST(Messages, EmptyDeploy) {
  const DeployMsg back = dataflow::decode_from<DeployMsg>(dataflow::encode_to_bytes(DeployMsg{}));
  EXPECT_TRUE(back.assignments.empty());
}

TEST(Messages, RouteUpdateRoundTrip) {
  RouteUpdateMsg msg{InstanceId{5},
                     InstanceInfo{InstanceId{6}, OperatorId{7}, DeviceId{8}}};
  const RouteUpdateMsg back = dataflow::decode_from<RouteUpdateMsg>(dataflow::encode_to_bytes(msg));
  EXPECT_EQ(back.upstream, msg.upstream);
  EXPECT_EQ(back.downstream, msg.downstream);
}

TEST(Messages, RouteUpdateInvalidUpstreamSurvives) {
  // A broadcast removal uses an invalid upstream id.
  RouteUpdateMsg msg{InstanceId{},
                     InstanceInfo{InstanceId{1}, OperatorId{2}, DeviceId{3}}};
  const RouteUpdateMsg back = dataflow::decode_from<RouteUpdateMsg>(dataflow::encode_to_bytes(msg));
  EXPECT_FALSE(back.upstream.valid());
}

TEST(Messages, DataRoundTrip) {
  DataMsg msg;
  msg.src_instance = InstanceId{1};
  msg.src_device = DeviceId{2};
  msg.dst_instance = InstanceId{3};
  msg.sent_ns = 123456789;
  msg.accumulated = {1.5, 2.5, 3.5};
  msg.tuple_wire_size = 6066;
  msg.tuple = dataflow::Tuple{TupleId{9}, SimTime{8}}.set("k", std::int64_t{7});

  const DataMsg back = dataflow::decode_from<DataMsg>(dataflow::encode_to_bytes(msg));
  EXPECT_EQ(back.src_instance, msg.src_instance);
  EXPECT_EQ(back.src_device, msg.src_device);
  EXPECT_EQ(back.dst_instance, msg.dst_instance);
  EXPECT_EQ(back.sent_ns, msg.sent_ns);
  EXPECT_DOUBLE_EQ(back.accumulated.transmission_ms, 1.5);
  EXPECT_DOUBLE_EQ(back.accumulated.queuing_ms, 2.5);
  EXPECT_DOUBLE_EQ(back.accumulated.processing_ms, 3.5);
  EXPECT_EQ(back.tuple_wire_size, 6066u);
  EXPECT_EQ(back.tuple, msg.tuple);
}

TEST(Messages, AckRoundTrip) {
  AckMsg msg;
  msg.from_instance = InstanceId{1};
  msg.to_instance = InstanceId{2};
  msg.tuple = TupleId{99};
  msg.echoed_sent_ns = -5;
  msg.processing_ms = 46.5;
  const AckMsg back = dataflow::decode_from<AckMsg>(dataflow::encode_to_bytes(msg));
  EXPECT_EQ(back.from_instance, msg.from_instance);
  EXPECT_EQ(back.to_instance, msg.to_instance);
  EXPECT_EQ(back.tuple, msg.tuple);
  EXPECT_EQ(back.echoed_sent_ns, -5);
  EXPECT_DOUBLE_EQ(back.processing_ms, 46.5);
}

TEST(Messages, DeviceMsgRoundTrip) {
  const DeviceMsg back = dataflow::decode_from<DeviceMsg>(
      dataflow::encode_to_bytes(DeviceMsg{DeviceId{42}}));
  EXPECT_EQ(back.device, DeviceId{42});
}

TEST(Messages, DelayBreakdownTotal) {
  const DelayBreakdown b{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(b.total_ms(), 60.0);
}

TEST(Messages, CorruptPayloadThrows) {
  Bytes garbage = {1, 2};
  EXPECT_THROW(dataflow::decode_from<DeployMsg>(garbage), WireFormatError);
  EXPECT_THROW(dataflow::decode_from<DataMsg>(garbage), WireFormatError);
  EXPECT_THROW(dataflow::decode_from<AckMsg>(garbage), WireFormatError);
}

}  // namespace
}  // namespace swing::runtime
