// Worker/Swarm integration: end-to-end behaviour of the runtime on small
// swarms — delivery, ACK-driven estimation, joins, leaves, link failures.
#include <gtest/gtest.h>

#include "apps/face_recognition.h"
#include "dataflow/function_unit.h"
#include "device/profile.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

#include <chrono>

namespace swing::runtime {
namespace {

dataflow::AppGraph tiny_app(double rate = 10.0, std::uint64_t max = 0,
                            double cost_ms = 20.0) {
  dataflow::AppGraph g;
  dataflow::SourceSpec spec;
  spec.rate_per_s = rate;
  spec.max_tuples = max;
  spec.generate = [](TupleId id, SimTime, Rng&) {
    dataflow::Tuple t;
    t.set("payload", dataflow::Blob{4000, id.value()});
    return t;
  };
  const auto src = g.add_source("src", std::move(spec));
  const auto work = g.add_transform("work", dataflow::passthrough_unit(),
                                    dataflow::constant_cost(cost_ms));
  const auto snk = g.add_sink("snk");
  g.connect(src, work).connect(work, snk);
  return g;
}

class SwarmTest : public ::testing::Test {
 protected:
  Simulator sim_;
  runtime::Swarm swarm_{sim_};
};

TEST_F(SwarmTest, EndToEndDelivery) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0, 50));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(10));
  swarm_.shutdown();
  EXPECT_EQ(swarm_.metrics().frames_arrived(), 50u);
}

TEST_F(SwarmTest, FramesCarryLatencyBreakdown) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0, 20));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(5));
  ASSERT_GT(swarm_.metrics().frames_arrived(), 0u);
  for (const auto& f : swarm_.metrics().frames()) {
    EXPECT_GT(f.breakdown.transmission_ms, 0.0);
    EXPECT_GT(f.breakdown.processing_ms, 0.0);
    EXPECT_GT(f.e2e_ms(), 0.0);
    // End-to-end must be at least the sum of attributed components (it also
    // includes ack-free segments like the final hop to the sink).
    EXPECT_GE(f.e2e_ms() * 1.01, f.breakdown.processing_ms);
  }
}

TEST_F(SwarmTest, MasterOnlySwarmDropsAtSource) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0, 0));
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(5));
  // No workers: the transform has no instances, frames are dropped.
  EXPECT_EQ(swarm_.metrics().frames_arrived(), 0u);
  EXPECT_GT(swarm_.metrics().drops(core::DropReason::kNoDownstream), 30u);
}

TEST_F(SwarmTest, WorkersShareLoadWhenNeitherSuffices) {
  // 20 fps of 120 ms reference work: no single device can absorb it, so
  // LRS must select and feed both.
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  const auto c = swarm_.add_device(device::profile_I(), {2.5, 0.0});
  swarm_.launch_master(a, tiny_app(20.0, 0, 120.0));
  swarm_.launch_worker(b);
  swarm_.launch_worker(c);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(20));
  EXPECT_GT(swarm_.metrics().device(b).frames_in, 50u);
  EXPECT_GT(swarm_.metrics().device(c).frames_in, 50u);
}

TEST_F(SwarmTest, LrsConcentratesLoadWhenOneDeviceSuffices) {
  // 20 fps of 20 ms reference work: the Nexus 4 alone sustains it, so
  // worker selection leaves the second device nearly idle (probes only).
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  const auto c = swarm_.add_device(device::profile_C(), {2.5, 0.0});
  swarm_.launch_master(a, tiny_app(20.0));
  swarm_.launch_worker(b);
  swarm_.launch_worker(c);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(20));
  EXPECT_GT(swarm_.metrics().device(b).frames_in,
            10 * swarm_.metrics().device(c).frames_in);
}

TEST_F(SwarmTest, AckLatencyEstimatesConverge) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_B(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0, 0, 50.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(10));

  const auto* source_manager = swarm_.worker(a)->manager_of(
      swarm_.graph().sources()[0]);
  ASSERT_NE(source_manager, nullptr);
  const auto estimates = source_manager->estimator().estimates();
  ASSERT_EQ(estimates.size(), 1u);
  // 50 ms reference work on a perf-1.0 device plus transport: the latency
  // estimate must sit near that, not at the 40 ms default.
  EXPECT_GT(estimates[0].latency_ms, 45.0);
  EXPECT_LT(estimates[0].latency_ms, 120.0);
  EXPECT_NEAR(estimates[0].processing_ms, 50.0, 10.0);
}

TEST_F(SwarmTest, LateJoinerIsAdopted) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_E(), {2.0, 0.0});
  const auto c = swarm_.add_device(device::profile_H(), {2.5, 0.0});
  swarm_.launch_master(a, tiny_app(20.0, 0, 60.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(5));
  const auto before = swarm_.metrics().device(c).frames_in;
  EXPECT_EQ(before, 0u);

  swarm_.launch_worker(c);  // Joins mid-run via discovery.
  sim_.run_for(seconds(5));
  EXPECT_GT(swarm_.metrics().device(c).frames_in, 20u);
}

TEST_F(SwarmTest, JoinLosesNoData) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  const auto c = swarm_.add_device(device::profile_I(), {2.5, 0.0});
  swarm_.launch_master(a, tiny_app(10.0, 100));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(3));
  swarm_.launch_worker(c);
  sim_.run_for(seconds(15));
  swarm_.shutdown();
  // Paper §VI-C: "the system preserves all the existing links during the
  // transition and no data is lost".
  EXPECT_EQ(swarm_.metrics().frames_arrived(), 100u);
}

TEST_F(SwarmTest, GracefulLeaveReroutes) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  const auto c = swarm_.add_device(device::profile_I(), {2.5, 0.0});
  swarm_.launch_master(a, tiny_app(10.0));
  swarm_.launch_worker(b);
  swarm_.launch_worker(c);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(5));

  swarm_.leave_gracefully(c);
  sim_.run_for(seconds(2));
  const auto at_leave = swarm_.metrics().device(c).frames_in;
  sim_.run_for(seconds(5));
  // No more traffic to the departed device; work continues on B.
  EXPECT_LE(swarm_.metrics().device(c).frames_in, at_leave + 1);
  EXPECT_FALSE(swarm_.master()->is_member(c));
  const auto t = sim_.now();
  EXPECT_GT(swarm_.metrics().throughput_fps(t - seconds(3), t), 8.0);
}

TEST_F(SwarmTest, AbruptLeaveDetectedAndRerouted) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  const auto c = swarm_.add_device(device::profile_I(), {2.5, 0.0});
  swarm_.launch_master(a, tiny_app(20.0));
  swarm_.launch_worker(b);
  swarm_.launch_worker(c);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(5));

  swarm_.leave_abruptly(c);
  sim_.run_for(seconds(5));
  // Master learned via a worker's LeaveReport (triggered by send failure).
  EXPECT_FALSE(swarm_.master()->is_member(c));
  // Throughput recovered on the remaining device.
  const auto t = sim_.now();
  EXPECT_GT(swarm_.metrics().throughput_fps(t - seconds(2), t), 15.0);
}

TEST_F(SwarmTest, StopHaltsSources) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(3));
  swarm_.stop();
  sim_.run_for(seconds(1));  // Drain in-flight frames.
  const auto arrived = swarm_.metrics().frames_arrived();
  sim_.run_for(seconds(5));
  EXPECT_EQ(swarm_.metrics().frames_arrived(), arrived);
}

TEST_F(SwarmTest, RestartResumesGeneration) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(2));
  swarm_.stop();
  sim_.run_for(seconds(2));
  const auto paused = swarm_.metrics().frames_arrived();
  swarm_.start();
  sim_.run_for(seconds(3));
  EXPECT_GT(swarm_.metrics().frames_arrived(), paused + 20);
}

TEST_F(SwarmTest, SinkReorderBufferInstalled) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  const auto* reorder =
      swarm_.worker(a)->reorder_of(swarm_.graph().sinks()[0]);
  ASSERT_NE(reorder, nullptr);
  EXPECT_EQ(reorder->capacity(), 10u);  // 10 FPS x 1 s span.
}

TEST_F(SwarmTest, PlaybackMonotoneUnderRealTraffic) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_B(), {2.0, 0.0});
  const auto c = swarm_.add_device(device::profile_E(), {2.5, 0.0});
  swarm_.launch_master(a, tiny_app(15.0, 150, 40.0));
  swarm_.launch_worker(b);
  swarm_.launch_worker(c);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(20));
  swarm_.shutdown();

  const auto& plays = swarm_.metrics().plays().points();
  ASSERT_GT(plays.size(), 50u);
  for (std::size_t i = 1; i < plays.size(); ++i) {
    EXPECT_GT(plays[i].value, plays[i - 1].value);
  }
}

TEST_F(SwarmTest, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    SwarmConfig config;
    config.seed = seed;
    Swarm swarm{sim, config};
    const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
    const auto b = swarm.add_device(device::profile_B(), {2.0, 0.0});
    const auto c = swarm.add_device(device::profile_H(), {2.5, 0.0});
    swarm.launch_master(a, tiny_app(20.0, 200));
    swarm.launch_worker(b);
    swarm.launch_worker(c);
    sim.run_for(seconds(1));
    swarm.start();
    sim.run_for(seconds(15));
    swarm.shutdown();
    return std::make_tuple(swarm.metrics().frames_arrived(),
                           swarm.metrics().latency_stats().mean(),
                           swarm.metrics().device(b).frames_in);
  };
  EXPECT_EQ(run_once(7), run_once(7));
  // Different seeds change service-time jitter, hence measured latency.
  EXPECT_NE(std::get<1>(run_once(7)), std::get<1>(run_once(8)));
}

TEST_F(SwarmTest, CpuSamplesCollected) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_E(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0, 0, 100.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(10));
  // E (perf 0.2) at 10 fps x 100 ms ref = heavily loaded.
  EXPECT_GT(swarm_.metrics().device(b).cpu_util.mean(), 0.5);
}

TEST_F(SwarmTest, EnergyAccountingSane) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  const auto before = swarm_.energy_snapshot(b);
  sim_.run_for(seconds(30));
  const auto after = swarm_.energy_snapshot(b);
  const auto power = Swarm::power_between(before, after);
  EXPECT_GT(power.cpu_w, device::profile_H().cpu_idle_w * 0.9);
  EXPECT_LT(power.cpu_w, device::profile_H().cpu_peak_w);
  EXPECT_GT(power.wifi_w, 0.0);
  EXPECT_LT(power.wifi_w, device::profile_H().wifi_peak_w);
}

TEST_F(SwarmTest, UnknownDeviceThrows) {
  EXPECT_THROW(static_cast<void>(swarm_.device(DeviceId{99})), std::out_of_range);
}

TEST_F(SwarmTest, WorkerBeforeMasterThrows) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  EXPECT_THROW(swarm_.launch_worker(a), std::logic_error);
  EXPECT_THROW(swarm_.start(), std::logic_error);
}

TEST_F(SwarmTest, SecondMasterThrows) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  swarm_.launch_master(a, tiny_app());
  EXPECT_THROW(swarm_.launch_master(a, tiny_app()), std::logic_error);
}


TEST_F(SwarmTest, DeviceCanRejoinAfterLeaving) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  const auto c = swarm_.add_device(device::profile_I(), {2.5, 0.0});
  swarm_.launch_master(a, tiny_app(20.0, 0, 60.0));
  swarm_.launch_worker(b);
  swarm_.launch_worker(c);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(5));

  // C walks away...
  swarm_.leave_abruptly(c);
  sim_.run_for(seconds(5));
  EXPECT_FALSE(swarm_.master()->is_member(c));
  const auto frames_while_gone = swarm_.metrics().device(c).frames_in;

  // ...and comes back: rediscovers the master, re-deploys, carries load.
  swarm_.launch_worker(c);
  sim_.run_for(seconds(8));
  EXPECT_TRUE(swarm_.master()->is_member(c));
  EXPECT_GT(swarm_.metrics().device(c).frames_in, frames_while_gone + 20);
}

TEST_F(SwarmTest, RejoinAfterGracefulLeave) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(3));
  swarm_.leave_gracefully(b);
  sim_.run_for(seconds(3));
  // Nobody to compute.
  EXPECT_GT(swarm_.metrics().drops(core::DropReason::kNoDownstream), 0u);

  swarm_.launch_worker(b);
  sim_.run_for(seconds(6));
  const auto t = sim_.now();
  EXPECT_GT(swarm_.metrics().throughput_fps(t - seconds(2), t), 8.0);
}


TEST_F(SwarmTest, SilentDeathOfIdleDeviceDetectedByHeartbeats) {
  // No data ever flows (app not started), so only heartbeats can reveal
  // that an idle member died.
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  const auto c = swarm_.add_device(device::profile_I(), {2.5, 0.0});
  swarm_.launch_master(a, tiny_app(10.0));
  swarm_.launch_worker(b);
  swarm_.launch_worker(c);
  sim_.run_for(seconds(2));
  ASSERT_TRUE(swarm_.master()->is_member(c));

  swarm_.leave_abruptly(c);  // Radio gone, no goodbye, no data to miss.
  sim_.run_for(seconds(10));  // Past the 6 s member timeout.
  EXPECT_FALSE(swarm_.master()->is_member(c));
  EXPECT_TRUE(swarm_.master()->is_member(b));  // Heartbeats kept B alive.
}

TEST_F(SwarmTest, HealthyIdleMembersNeverSweptOut) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(10.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(30));  // Long idle stretch, app never started.
  EXPECT_TRUE(swarm_.master()->is_member(b));
  EXPECT_EQ(swarm_.master()->member_count(), 2u);
}


TEST_F(SwarmTest, MultiSourceGraphKeepsTupleIdsDistinct) {
  // Two independent sensing pipelines in one app (camera + mic): tuple ids
  // must stay unique across sources so the metrics and reordering planes
  // never confuse frames.
  dataflow::AppGraph g;
  for (const std::string name : {"camera", "mic"}) {
    dataflow::SourceSpec spec;
    spec.rate_per_s = 10.0;
    spec.max_tuples = 40;
    spec.generate = [](TupleId id, SimTime, Rng&) {
      dataflow::Tuple t;
      t.set("payload", dataflow::Blob{1000, id.value()});
      return t;
    };
    const auto src = g.add_source(name, std::move(spec));
    const auto work = g.add_transform(name + "_work",
                                      dataflow::passthrough_unit(),
                                      dataflow::constant_cost(5.0));
    const auto snk = g.add_sink(name + "_snk");
    g.connect(src, work).connect(work, snk);
  }

  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, std::move(g));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(10));
  swarm_.shutdown();

  // Both pipelines delivered everything, with no id collisions swallowed.
  EXPECT_EQ(swarm_.metrics().frames_arrived(), 80u);
}

TEST_F(SwarmTest, RealtimePacingMatchesWallClock) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(20.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();

  // This test measures pacing, so reading the wall clock is the point.
  const auto wall_start = std::chrono::steady_clock::now();  // swing-lint: allow(wall-clock)
  sim_.run_realtime(millis(300), /*speed=*/1.0);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)  // swing-lint: allow(wall-clock)
                            .count();
  // Paced: takes at least most of the simulated span in wall time (upper
  // bound left loose for noisy CI machines).
  EXPECT_GE(wall_s, 0.25);
  EXPECT_GT(swarm_.metrics().frames_arrived(), 3u);
}

}  // namespace
}  // namespace swing::runtime
