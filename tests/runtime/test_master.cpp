#include "runtime/master.h"

#include <gtest/gtest.h>

#include "dataflow/function_unit.h"
#include "dataflow/codec.h"
#include "runtime/messages.h"
#include "sim/simulator.h"

namespace swing::runtime {
namespace {

dataflow::SourceSpec test_source() {
  dataflow::SourceSpec spec;
  spec.rate_per_s = 24.0;
  spec.generate = [](TupleId, SimTime, Rng&) { return dataflow::Tuple{}; };
  return spec;
}

dataflow::AppGraph pipeline(std::size_t max_replicas = 0) {
  dataflow::AppGraph g;
  const auto src = g.add_source("src", test_source());
  const auto t1 = g.add_transform("stage1", dataflow::passthrough_unit(),
                                  dataflow::constant_cost(10.0),
                                  max_replicas);
  const auto t2 = g.add_transform("stage2", dataflow::passthrough_unit(),
                                  dataflow::constant_cost(10.0),
                                  max_replicas);
  const auto snk = g.add_sink("snk");
  g.connect(src, t1).connect(t1, t2).connect(t2, snk);
  return g;
}

// Captures every message each device receives.
class MasterTest : public ::testing::Test {
 protected:
  MasterTest()
      : medium_(sim_), transport_(sim_, medium_), discovery_(sim_) {}

  void attach(DeviceId id) {
    medium_.attach(id, net::Position{1.0, 0.0});
    transport_.register_device(id, [this, id](const net::Message& m) {
      inbox_[id.value()].push_back(m);
      if (master_ && id == master_->device()) master_->handle_message(m);
    });
  }

  std::vector<net::Message> of_type(DeviceId id, MsgType type) {
    std::vector<net::Message> out;
    for (const auto& m : inbox_[id.value()]) {
      if (MsgType(m.type) == type) out.push_back(m);
    }
    return out;
  }

  void make_master(dataflow::AppGraph graph, MasterConfig config = {}) {
    graph_ = std::move(graph);
    master_ = std::make_unique<Master>(sim_, a_, transport_, discovery_,
                                       graph_, config);
    master_->launch();
    sim_.run_for(millis(10));
  }

  Simulator sim_;
  net::Medium medium_;
  net::Transport transport_;
  net::Discovery discovery_;
  dataflow::AppGraph graph_;
  std::unique_ptr<Master> master_;
  std::map<std::uint64_t, std::vector<net::Message>> inbox_;
  DeviceId a_{0}, b_{1}, c_{2};
};

TEST_F(MasterTest, InvalidGraphRejectedAtConstruction) {
  attach(a_);
  dataflow::AppGraph bad;
  bad.add_source("s", test_source());
  EXPECT_THROW(
      Master(sim_, a_, transport_, discovery_, bad, MasterConfig{}),
      dataflow::GraphError);
}

TEST_F(MasterTest, LaunchAdvertisesService) {
  attach(a_);
  make_master(pipeline());
  EXPECT_EQ(discovery_.provider_count(kSwingService), 1u);
}

TEST_F(MasterTest, MasterDeviceHostsSourceAndSinkOnly) {
  attach(a_);
  make_master(pipeline());
  EXPECT_TRUE(master_->is_member(a_));
  const auto deploys = of_type(a_, MsgType::kDeploy);
  ASSERT_EQ(deploys.size(), 1u);
  const auto deploy = dataflow::decode_from<DeployMsg>(deploys[0].payload);
  EXPECT_EQ(deploy.assignments.size(), 2u);  // Source + sink, no transforms.
}

TEST_F(MasterTest, TransformsOnMasterWhenAllowed) {
  attach(a_);
  MasterConfig config;
  config.transforms_on_master = true;
  make_master(pipeline(), config);
  const auto deploy =
      dataflow::decode_from<DeployMsg>(of_type(a_, MsgType::kDeploy)[0].payload);
  EXPECT_EQ(deploy.assignments.size(), 4u);
}

TEST_F(MasterTest, HelloDeploysTransformsToWorker) {
  attach(a_);
  attach(b_);
  make_master(pipeline());
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));

  EXPECT_TRUE(master_->is_member(b_));
  const auto deploys = of_type(b_, MsgType::kDeploy);
  ASSERT_EQ(deploys.size(), 1u);
  const auto deploy = dataflow::decode_from<DeployMsg>(deploys[0].payload);
  EXPECT_EQ(deploy.assignments.size(), 2u);  // stage1 + stage2.
}

TEST_F(MasterTest, DuplicateHelloIgnored) {
  attach(a_);
  attach(b_);
  make_master(pipeline());
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  EXPECT_EQ(of_type(b_, MsgType::kDeploy).size(), 1u);
  EXPECT_EQ(master_->member_count(), 2u);
}

TEST_F(MasterTest, UpstreamsToldAboutNewDownstreams) {
  attach(a_);
  attach(b_);
  make_master(pipeline());
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  // The source instance on A must learn about B's stage1 instance.
  const auto updates = of_type(a_, MsgType::kAddDownstream);
  ASSERT_FALSE(updates.empty());
  bool found = false;
  for (const auto& m : updates) {
    const auto update = dataflow::decode_from<RouteUpdateMsg>(m.payload);
    if (update.downstream.device == b_) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(MasterTest, SameBatchStagesWiredTogether) {
  attach(a_);
  attach(b_);
  make_master(pipeline());
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  // B's stage1 must be told about B's stage2 (created in the same deploy).
  const auto stage1 = master_->instances_of(graph_.operators()[1].id);
  const auto stage2 = master_->instances_of(graph_.operators()[2].id);
  ASSERT_EQ(stage1.size(), 1u);
  ASSERT_EQ(stage2.size(), 1u);
  bool wired = false;
  for (const auto& m : of_type(b_, MsgType::kAddDownstream)) {
    const auto update = dataflow::decode_from<RouteUpdateMsg>(m.payload);
    if (update.upstream == stage1[0].instance &&
        update.downstream.instance == stage2[0].instance) {
      wired = true;
    }
  }
  EXPECT_TRUE(wired);
}

TEST_F(MasterTest, MaxReplicasRespected) {
  attach(a_);
  attach(b_);
  attach(c_);
  make_master(pipeline(/*max_replicas=*/1));
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  transport_.send(c_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  // Only B got the single replica of each stage; C is a member but idle.
  EXPECT_TRUE(master_->is_member(c_));
  EXPECT_TRUE(of_type(c_, MsgType::kDeploy).empty());
  EXPECT_EQ(master_->instances_of(graph_.operators()[1].id).size(), 1u);
}

TEST_F(MasterTest, StartBroadcastsToMembers) {
  attach(a_);
  attach(b_);
  make_master(pipeline());
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  master_->start();
  sim_.run_for(millis(50));
  EXPECT_EQ(of_type(a_, MsgType::kStart).size(), 1u);
  EXPECT_EQ(of_type(b_, MsgType::kStart).size(), 1u);
  EXPECT_TRUE(master_->started());
}

TEST_F(MasterTest, LateJoinerGetsStartImmediately) {
  attach(a_);
  attach(b_);
  make_master(pipeline());
  master_->start();
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  EXPECT_EQ(of_type(b_, MsgType::kStart).size(), 1u);
}

TEST_F(MasterTest, RemoveDeviceBroadcastsRemovals) {
  attach(a_);
  attach(b_);
  attach(c_);
  make_master(pipeline());
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  transport_.send(c_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));

  master_->remove_device(b_);
  sim_.run_for(millis(50));
  EXPECT_FALSE(master_->is_member(b_));
  // Each remaining member hears about each of B's two instances.
  EXPECT_EQ(of_type(c_, MsgType::kRemoveDownstream).size(), 2u);
  EXPECT_EQ(of_type(a_, MsgType::kRemoveDownstream).size(), 2u);
  EXPECT_EQ(master_->instances_of(graph_.operators()[1].id).size(), 1u);
}

TEST_F(MasterTest, RemoveUnknownDeviceIsNoop) {
  attach(a_);
  make_master(pipeline());
  master_->remove_device(DeviceId{77});
  EXPECT_EQ(master_->member_count(), 1u);
}

TEST_F(MasterTest, ByeRemovesSender) {
  attach(a_);
  attach(b_);
  make_master(pipeline());
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  transport_.send(b_, a_, std::uint8_t(MsgType::kBye),
                  dataflow::encode_to_bytes(DeviceMsg{b_}));
  sim_.run_for(millis(50));
  EXPECT_FALSE(master_->is_member(b_));
}

TEST_F(MasterTest, LeaveReportRemovesReportedDevice) {
  attach(a_);
  attach(b_);
  attach(c_);
  make_master(pipeline());
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  transport_.send(c_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  transport_.send(c_, a_, std::uint8_t(MsgType::kLeaveReport),
                  dataflow::encode_to_bytes(DeviceMsg{b_}));
  sim_.run_for(millis(50));
  EXPECT_FALSE(master_->is_member(b_));
  EXPECT_TRUE(master_->is_member(c_));
}

TEST_F(MasterTest, InstanceCountTracksMembership) {
  attach(a_);
  attach(b_);
  make_master(pipeline());
  EXPECT_EQ(master_->instance_count(), 2u);  // src + sink.
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  EXPECT_EQ(master_->instance_count(), 4u);
  master_->remove_device(b_);
  EXPECT_EQ(master_->instance_count(), 2u);
}


TEST_F(MasterTest, MasterPinnedTransformDeploysToMasterDevice) {
  attach(a_);
  attach(b_);
  dataflow::AppGraph g;
  const auto src = g.add_source("src", test_source());
  const auto pre = g.add_transform("preprocess", dataflow::passthrough_unit(),
                                   dataflow::constant_cost(1.0));
  g.place_on_master(pre);
  const auto heavy = g.add_transform("heavy", dataflow::passthrough_unit(),
                                     dataflow::constant_cost(50.0));
  const auto snk = g.add_sink("snk");
  g.connect(src, pre).connect(pre, heavy).connect(heavy, snk);
  make_master(std::move(g));
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));

  // The pinned transform lives on A even though transforms_on_master is
  // false by default; the heavy stage went to B.
  const auto pre_instances = master_->instances_of(graph_.operators()[1].id);
  ASSERT_EQ(pre_instances.size(), 1u);
  EXPECT_EQ(pre_instances[0].device, a_);
  const auto heavy_instances =
      master_->instances_of(graph_.operators()[2].id);
  ASSERT_EQ(heavy_instances.size(), 1u);
  EXPECT_EQ(heavy_instances[0].device, b_);
}

TEST_F(MasterTest, SilentMemberSweptAfterTimeout) {
  attach(a_);
  attach(b_);
  make_master(pipeline());
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  sim_.run_for(millis(50));
  ASSERT_TRUE(master_->is_member(b_));
  // B never heartbeats (no Worker behind it): the sweep evicts it.
  sim_.run_for(seconds(10));
  EXPECT_FALSE(master_->is_member(b_));
}

TEST_F(MasterTest, HeartbeatsKeepMemberAlive) {
  attach(a_);
  attach(b_);
  make_master(pipeline());
  transport_.send(b_, a_, std::uint8_t(MsgType::kHello), Bytes{});
  for (int i = 0; i < 10; ++i) {
    sim_.run_for(seconds(1));
    transport_.send(b_, a_, std::uint8_t(MsgType::kHeartbeat), Bytes{});
  }
  EXPECT_TRUE(master_->is_member(b_));
}

}  // namespace
}  // namespace swing::runtime
