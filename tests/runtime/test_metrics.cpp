#include "runtime/metrics.h"

#include <gtest/gtest.h>

namespace swing::runtime {
namespace {

using dataflow::Tuple;

Tuple frame(std::uint64_t id, SimTime source_time) {
  return Tuple{TupleId{id}, source_time};
}

TEST(Metrics, RecordsSinkArrival) {
  MetricsCollector m;
  m.on_sink_arrival(frame(1, SimTime{}), DelayBreakdown{10, 20, 30},
                    SimTime{} + millis(60));
  ASSERT_EQ(m.frames_arrived(), 1u);
  const auto& f = m.frames()[0];
  EXPECT_EQ(f.id, TupleId{1});
  EXPECT_DOUBLE_EQ(f.e2e_ms(), 60.0);
  EXPECT_DOUBLE_EQ(f.breakdown.queuing_ms, 20.0);
  EXPECT_FALSE(f.displayed);
}

TEST(Metrics, PlayMarksDisplayed) {
  MetricsCollector m;
  m.on_sink_arrival(frame(1, SimTime{}), {}, SimTime{} + millis(10));
  m.on_play(TupleId{1}, SimTime{} + millis(50));
  EXPECT_TRUE(m.frames()[0].displayed);
  EXPECT_EQ(m.frames()[0].display, SimTime{} + millis(50));
}

TEST(Metrics, PlayForUnknownTupleIgnored) {
  MetricsCollector m;
  m.on_play(TupleId{7}, SimTime{});
  EXPECT_EQ(m.frames_arrived(), 0u);
}

TEST(Metrics, LatencyStatsWindowed) {
  MetricsCollector m;
  m.on_sink_arrival(frame(1, SimTime{}), {}, SimTime{} + millis(100));
  m.on_sink_arrival(frame(2, SimTime{} + seconds(10)), {},
                    SimTime{} + seconds(10) + millis(300));
  const auto all = m.latency_stats();
  EXPECT_EQ(all.count(), 2u);
  EXPECT_DOUBLE_EQ(all.mean(), 200.0);
  const auto late =
      m.latency_stats(SimTime{} + seconds(5), SimTime::max());
  EXPECT_EQ(late.count(), 1u);
  EXPECT_DOUBLE_EQ(late.mean(), 300.0);
}

TEST(Metrics, ThroughputFps) {
  MetricsCollector m;
  for (int i = 0; i < 48; ++i) {
    m.on_sink_arrival(frame(i, SimTime{}), {},
                      SimTime{} + millis(i * 1000.0 / 24.0));
  }
  EXPECT_NEAR(m.throughput_fps(SimTime{}, SimTime{} + seconds(2)), 24.0,
              0.5);
}

TEST(Metrics, ThroughputBins) {
  MetricsCollector m;
  m.on_sink_arrival(frame(1, SimTime{}), {}, SimTime{} + millis(500));
  m.on_sink_arrival(frame(2, SimTime{}), {}, SimTime{} + millis(700));
  m.on_sink_arrival(frame(3, SimTime{}), {}, SimTime{} + millis(1500));
  const auto bins = m.throughput_bins(SimTime{}, SimTime{} + seconds(2));
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0], 2u);
  EXPECT_EQ(bins[1], 1u);
}

TEST(Metrics, DeviceCounters) {
  MetricsCollector m;
  m.on_routed(DeviceId{1}, 6000, true);
  m.on_routed(DeviceId{1}, 6000, false);
  m.on_routed(DeviceId{2}, 100, true);
  EXPECT_EQ(m.device(DeviceId{1}).frames_in, 2u);
  EXPECT_EQ(m.device(DeviceId{1}).frames_from_source, 1u);
  EXPECT_EQ(m.device(DeviceId{1}).bytes_in, 12000u);
  EXPECT_EQ(m.device(DeviceId{2}).frames_in, 1u);
  EXPECT_EQ(m.device(DeviceId{3}).frames_in, 0u);
}

TEST(Metrics, CpuSamples) {
  MetricsCollector m;
  m.record_cpu_sample(DeviceId{1}, 0.5, SimTime{} + seconds(1));
  m.record_cpu_sample(DeviceId{1}, 0.7, SimTime{} + seconds(2));
  EXPECT_NEAR(m.device(DeviceId{1}).cpu_util.mean(), 0.6, 1e-9);
  EXPECT_EQ(m.cpu_series(DeviceId{1}).points().size(), 2u);
}

TEST(Metrics, DropCounters) {
  MetricsCollector m;
  m.on_drop(core::DropReason::kSendFailed);
  m.on_drop(core::DropReason::kSourceOverrun);
  m.on_drop(core::DropReason::kSourceOverrun);
  m.on_drop(core::DropReason::kComputeBacklog);
  EXPECT_EQ(m.drops(core::DropReason::kSendFailed), 1u);
  EXPECT_EQ(m.drops(core::DropReason::kSourceOverrun), 2u);
  EXPECT_EQ(m.drops(core::DropReason::kComputeBacklog), 1u);
  EXPECT_EQ(m.drops(core::DropReason::kStaleTtl), 0u);
  EXPECT_EQ(m.total_drops(), 4u);
  // The same counts are visible through the registry, labelled by reason.
  EXPECT_EQ(m.registry().counter_total("tuples_dropped"), 4u);
  const auto* c = m.registry().find_counter(
      "tuples_dropped", {{"reason", "source-overrun"}});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 2u);
}

TEST(Metrics, MeanBreakdown) {
  MetricsCollector m;
  m.on_sink_arrival(frame(1, SimTime{}), {10, 0, 20}, SimTime{});
  m.on_sink_arrival(frame(2, SimTime{}), {30, 10, 40}, SimTime{});
  const auto mean = m.mean_breakdown();
  EXPECT_DOUBLE_EQ(mean.transmission_ms, 20.0);
  EXPECT_DOUBLE_EQ(mean.queuing_ms, 5.0);
  EXPECT_DOUBLE_EQ(mean.processing_ms, 30.0);
}

TEST(Metrics, EmptyBreakdownIsZero) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.mean_breakdown().total_ms(), 0.0);
}

}  // namespace
}  // namespace swing::runtime
