// Property-style round-trip tests for every wire format: randomly generated
// messages must survive encode -> decode -> encode byte-identically and
// compare equal. Mirrors what the fuzz replay harnesses check over the
// corpus, but with structurally valid inputs drawn from the full field
// space. Also pins the hostile-varint-count regression the fuzzers found.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/gesture_recognition.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "dataflow/tuple.h"
#include "runtime/messages.h"

namespace swing::runtime {
namespace {

constexpr int kIterations = 64;

std::string random_string(Rng& rng) {
  const std::size_t len = rng.uniform_int(24);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(char('a' + rng.uniform_int(26)));
  }
  return s;
}

Bytes random_bytes(Rng& rng) {
  const std::size_t len = rng.uniform_int(32);
  Bytes b;
  b.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    b.push_back(std::uint8_t(rng.uniform_int(256)));
  }
  return b;
}

InstanceInfo random_instance_info(Rng& rng) {
  InstanceInfo info;
  info.instance = InstanceId{rng.next()};
  info.op = OperatorId{rng.next()};
  info.device = DeviceId{rng.next()};
  return info;
}

dataflow::Tuple random_tuple(Rng& rng) {
  dataflow::Tuple t{TupleId{rng.next()}, SimTime{std::int64_t(rng.next() >> 1)}};
  const std::size_t fields = rng.uniform_int(5);
  for (std::size_t i = 0; i < fields; ++i) {
    const std::string key = "k" + std::to_string(i);
    switch (rng.uniform_int(6)) {
      case 0:
        t.set(key, std::monostate{});
        break;
      case 1:
        t.set(key, std::int64_t(rng.next()));
        break;
      case 2:
        t.set(key, rng.uniform(-1e9, 1e9));
        break;
      case 3:
        t.set(key, random_string(rng));
        break;
      case 4:
        t.set(key, random_bytes(rng));
        break;
      default:
        t.set(key, dataflow::Blob{rng.uniform_int(1 << 20), rng.next()});
        break;
    }
  }
  return t;
}

// Decoded equality plus byte fixpoint: re-encoding the decoded message must
// reproduce the original encoding exactly.
template <typename Msg>
void expect_roundtrip(const Msg& msg) {
  const Bytes encoded = msg.to_bytes();
  const Msg decoded = Msg::from_bytes(encoded);
  EXPECT_EQ(decoded, msg);
  EXPECT_EQ(decoded.to_bytes(), encoded);
}

TEST(MessageRoundTrip, Tuple) {
  Rng rng{1};
  for (int i = 0; i < kIterations; ++i) expect_roundtrip(random_tuple(rng));
}

TEST(MessageRoundTrip, DeployMsg) {
  Rng rng{2};
  for (int i = 0; i < kIterations; ++i) {
    DeployMsg msg;
    const std::size_t n = rng.uniform_int(4);
    for (std::size_t a = 0; a < n; ++a) {
      DeployMsg::Assignment assignment;
      assignment.self = random_instance_info(rng);
      const std::size_t m = rng.uniform_int(4);
      for (std::size_t d = 0; d < m; ++d) {
        assignment.downstreams.push_back(random_instance_info(rng));
      }
      msg.assignments.push_back(std::move(assignment));
    }
    expect_roundtrip(msg);
  }
}

TEST(MessageRoundTrip, RouteUpdateMsg) {
  Rng rng{3};
  for (int i = 0; i < kIterations; ++i) {
    RouteUpdateMsg msg;
    msg.upstream = InstanceId{rng.next()};
    msg.downstream = random_instance_info(rng);
    expect_roundtrip(msg);
  }
}

TEST(MessageRoundTrip, DataMsg) {
  Rng rng{4};
  for (int i = 0; i < kIterations; ++i) {
    DataMsg msg;
    msg.src_instance = InstanceId{rng.next()};
    msg.src_device = DeviceId{rng.next()};
    msg.dst_instance = InstanceId{rng.next()};
    msg.sent_ns = std::int64_t(rng.next());
    msg.accumulated.transmission_ms = rng.uniform(0.0, 1e4);
    msg.accumulated.queuing_ms = rng.uniform(0.0, 1e4);
    msg.accumulated.processing_ms = rng.uniform(0.0, 1e4);
    msg.tuple_bytes = random_tuple(rng).to_bytes();
    msg.tuple_wire_size = msg.tuple_bytes.size() + rng.uniform_int(1 << 16);
    expect_roundtrip(msg);
  }
}

TEST(MessageRoundTrip, AckMsg) {
  Rng rng{5};
  for (int i = 0; i < kIterations; ++i) {
    AckMsg msg;
    msg.from_instance = InstanceId{rng.next()};
    msg.to_instance = InstanceId{rng.next()};
    msg.tuple = TupleId{rng.next()};
    msg.echoed_sent_ns = std::int64_t(rng.next());
    msg.processing_ms = rng.uniform(0.0, 1e4);
    msg.battery_fraction = rng.uniform();
    expect_roundtrip(msg);
  }
}

TEST(MessageRoundTrip, DataBatchMsg) {
  Rng rng{6};
  for (int i = 0; i < kIterations; ++i) {
    DataBatchMsg msg;
    const std::size_t n = rng.uniform_int(6);
    for (std::size_t d = 0; d < n; ++d) msg.datas.push_back(random_bytes(rng));
    expect_roundtrip(msg);
  }
}

TEST(MessageRoundTrip, DeviceMsg) {
  Rng rng{7};
  for (int i = 0; i < kIterations; ++i) {
    expect_roundtrip(DeviceMsg{DeviceId{rng.next()}});
  }
}

TEST(MessageRoundTrip, GestureFeatures) {
  // No operator== (plain float struct); the byte fixpoint plus field
  // equality on the decoded copy is the round-trip property.
  Rng rng{8};
  for (int i = 0; i < kIterations; ++i) {
    apps::GestureFeatures f;
    f.mean_magnitude = float(rng.uniform(0.0, 100.0));
    f.variance = float(rng.uniform(0.0, 100.0));
    f.energy = float(rng.uniform(0.0, 100.0));
    f.dominant_axis = float(rng.uniform_int(3));
    f.mean_bias = float(rng.uniform(0.0, 10.0));
    const Bytes encoded = f.to_bytes();
    const apps::GestureFeatures decoded =
        apps::GestureFeatures::from_bytes(encoded);
    EXPECT_EQ(decoded.mean_magnitude, f.mean_magnitude);
    EXPECT_EQ(decoded.variance, f.variance);
    EXPECT_EQ(decoded.energy, f.energy);
    EXPECT_EQ(decoded.dominant_axis, f.dominant_axis);
    EXPECT_EQ(decoded.mean_bias, f.mean_bias);
    EXPECT_EQ(decoded.to_bytes(), encoded);
  }
}

// Regression (found by fuzzing): a varint element count of 2^64-1 used to
// reach vector::reserve() and abort with std::length_error. Hostile counts
// must surface as the recoverable WireFormatError.
TEST(MessageRoundTrip, HostileCountIsWireFormatError) {
  const Bytes huge_count{0xff, 0xff, 0xff, 0xff, 0xff,
                         0xff, 0xff, 0xff, 0xff, 0x01};
  EXPECT_THROW((void)DeployMsg::from_bytes(huge_count), WireFormatError);
  EXPECT_THROW((void)DataBatchMsg::from_bytes(huge_count), WireFormatError);
}

TEST(MessageRoundTrip, TruncatedInputIsWireFormatError) {
  Rng rng{9};
  const Bytes full = random_tuple(rng).to_bytes();
  ASSERT_GT(full.size(), 4u);
  const Bytes truncated(full.begin(), full.begin() + 4);
  EXPECT_THROW((void)dataflow::Tuple::from_bytes(truncated), WireFormatError);
}

}  // namespace
}  // namespace swing::runtime
