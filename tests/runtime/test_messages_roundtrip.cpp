// Property-style round-trip tests for every wire format: randomly generated
// messages must survive encode -> decode -> encode byte-identically and
// compare equal. Mirrors what the fuzz replay harnesses check over the
// corpus, but with structurally valid inputs drawn from the full field
// space. Also pins the hostile-varint-count regression the fuzzers found.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/gesture_recognition.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "dataflow/codec.h"
#include "dataflow/tuple.h"
#include "runtime/messages.h"

namespace swing::runtime {
namespace {

constexpr int kIterations = 64;

std::string random_string(Rng& rng) {
  const std::size_t len = rng.uniform_int(24);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(char('a' + rng.uniform_int(26)));
  }
  return s;
}

Bytes random_bytes(Rng& rng) {
  const std::size_t len = rng.uniform_int(32);
  Bytes b;
  b.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    b.push_back(std::uint8_t(rng.uniform_int(256)));
  }
  return b;
}

InstanceInfo random_instance_info(Rng& rng) {
  InstanceInfo info;
  info.instance = InstanceId{rng.next()};
  info.op = OperatorId{rng.next()};
  info.device = DeviceId{rng.next()};
  return info;
}

dataflow::Tuple random_tuple(Rng& rng) {
  dataflow::Tuple t{TupleId{rng.next()}, SimTime{std::int64_t(rng.next() >> 1)}};
  const std::size_t fields = rng.uniform_int(5);
  for (std::size_t i = 0; i < fields; ++i) {
    const std::string key = "k" + std::to_string(i);
    switch (rng.uniform_int(6)) {
      case 0:
        t.set(key, std::monostate{});
        break;
      case 1:
        t.set(key, std::int64_t(rng.next()));
        break;
      case 2:
        t.set(key, rng.uniform(-1e9, 1e9));
        break;
      case 3:
        t.set(key, random_string(rng));
        break;
      case 4:
        t.set(key, random_bytes(rng));
        break;
      default:
        t.set(key, dataflow::Blob{rng.uniform_int(1 << 20), rng.next()});
        break;
    }
  }
  return t;
}

// Decoded equality plus byte fixpoint: re-encoding the decoded message must
// reproduce the original encoding exactly. Additionally pins the arena
// contract: encoding into a caller-owned buffer (SendArena frame) must be
// byte-identical to the owning-writer path.
template <typename Msg>
void expect_roundtrip(const Msg& msg) {
  const Bytes encoded = dataflow::encode_to_bytes(msg);
  const Msg decoded = dataflow::decode_from<Msg>(encoded);
  EXPECT_EQ(decoded, msg);
  EXPECT_EQ(dataflow::encode_to_bytes(decoded), encoded);

  static SendArena arena;
  ByteWriter& w = arena.begin_frame();
  msg.encode(w);
  const auto frame = arena.end_frame();
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), encoded.begin(),
                         encoded.end()));
}

TEST(MessageRoundTrip, Tuple) {
  Rng rng{1};
  for (int i = 0; i < kIterations; ++i) expect_roundtrip(random_tuple(rng));
}

TEST(MessageRoundTrip, DeployMsg) {
  Rng rng{2};
  for (int i = 0; i < kIterations; ++i) {
    DeployMsg msg;
    const std::size_t n = rng.uniform_int(4);
    for (std::size_t a = 0; a < n; ++a) {
      DeployMsg::Assignment assignment;
      assignment.self = random_instance_info(rng);
      const std::size_t m = rng.uniform_int(4);
      for (std::size_t d = 0; d < m; ++d) {
        assignment.downstreams.push_back(random_instance_info(rng));
      }
      msg.assignments.push_back(std::move(assignment));
    }
    expect_roundtrip(msg);
  }
}

TEST(MessageRoundTrip, RouteUpdateMsg) {
  Rng rng{3};
  for (int i = 0; i < kIterations; ++i) {
    RouteUpdateMsg msg;
    msg.upstream = InstanceId{rng.next()};
    msg.downstream = random_instance_info(rng);
    expect_roundtrip(msg);
  }
}

TEST(MessageRoundTrip, DataMsg) {
  Rng rng{4};
  for (int i = 0; i < kIterations; ++i) {
    DataMsg msg;
    msg.src_instance = InstanceId{rng.next()};
    msg.src_device = DeviceId{rng.next()};
    msg.dst_instance = InstanceId{rng.next()};
    msg.sent_ns = std::int64_t(rng.next());
    msg.accumulated.transmission_ms = rng.uniform(0.0, 1e4);
    msg.accumulated.queuing_ms = rng.uniform(0.0, 1e4);
    msg.accumulated.processing_ms = rng.uniform(0.0, 1e4);
    msg.tuple = random_tuple(rng);
    msg.tuple_wire_size = msg.tuple.wire_size() + rng.uniform_int(1 << 16);
    expect_roundtrip(msg);
  }
}

TEST(MessageRoundTrip, AckMsg) {
  Rng rng{5};
  for (int i = 0; i < kIterations; ++i) {
    AckMsg msg;
    msg.from_instance = InstanceId{rng.next()};
    msg.to_instance = InstanceId{rng.next()};
    msg.tuple = TupleId{rng.next()};
    msg.echoed_sent_ns = std::int64_t(rng.next());
    msg.processing_ms = rng.uniform(0.0, 1e4);
    msg.battery_fraction = rng.uniform();
    expect_roundtrip(msg);
  }
}

TEST(MessageRoundTrip, DataBatchMsg) {
  Rng rng{6};
  for (int i = 0; i < kIterations; ++i) {
    DataBatchMsg msg;
    const std::size_t n = rng.uniform_int(6);
    for (std::size_t d = 0; d < n; ++d) msg.append_frame(random_bytes(rng));
    expect_roundtrip(msg);
  }
}

TEST(MessageRoundTrip, DeviceMsg) {
  Rng rng{7};
  for (int i = 0; i < kIterations; ++i) {
    expect_roundtrip(DeviceMsg{DeviceId{rng.next()}});
  }
}

TEST(MessageRoundTrip, GestureFeatures) {
  // No operator== (plain float struct); the byte fixpoint plus field
  // equality on the decoded copy is the round-trip property.
  Rng rng{8};
  for (int i = 0; i < kIterations; ++i) {
    apps::GestureFeatures f;
    f.mean_magnitude = float(rng.uniform(0.0, 100.0));
    f.variance = float(rng.uniform(0.0, 100.0));
    f.energy = float(rng.uniform(0.0, 100.0));
    f.dominant_axis = float(rng.uniform_int(3));
    f.mean_bias = float(rng.uniform(0.0, 10.0));
    const Bytes encoded = dataflow::encode_to_bytes(f);
    const apps::GestureFeatures decoded =
        dataflow::decode_from<apps::GestureFeatures>(encoded);
    EXPECT_EQ(decoded.mean_magnitude, f.mean_magnitude);
    EXPECT_EQ(decoded.variance, f.variance);
    EXPECT_EQ(decoded.energy, f.energy);
    EXPECT_EQ(decoded.dominant_axis, f.dominant_axis);
    EXPECT_EQ(decoded.mean_bias, f.mean_bias);
    EXPECT_EQ(dataflow::encode_to_bytes(decoded), encoded);
  }
}

// Regression (found by fuzzing): a varint element count of 2^64-1 used to
// reach vector::reserve() and abort with std::length_error. Hostile counts
// must surface as the recoverable WireFormatError.
TEST(MessageRoundTrip, HostileCountIsWireFormatError) {
  const Bytes huge_count{0xff, 0xff, 0xff, 0xff, 0xff,
                         0xff, 0xff, 0xff, 0xff, 0x01};
  EXPECT_THROW((void)dataflow::decode_from<DeployMsg>(huge_count),
               WireFormatError);
  EXPECT_THROW((void)dataflow::decode_from<DataBatchMsg>(huge_count),
               WireFormatError);
}

TEST(MessageRoundTrip, TruncatedInputIsWireFormatError) {
  // Every proper prefix of a valid encoding must decode-fail cleanly: the
  // reader is a non-owning view, so running off its end is the only way a
  // hostile length could "escape", and it must surface as WireFormatError.
  Rng rng{9};
  const Bytes full = dataflow::encode_to_bytes(random_tuple(rng));
  ASSERT_GT(full.size(), 4u);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const Bytes truncated(full.begin(), full.begin() + cut);
    EXPECT_THROW((void)dataflow::decode_from<dataflow::Tuple>(truncated),
                 WireFormatError)
        << "prefix of " << cut << " bytes decoded";
  }
}

// encoded_size() is the exact length contract that lets DataMsg length-
// prefix a nested tuple frame before encoding it. Any drift between the
// sizer and the encoder would corrupt every data message on the wire.
TEST(MessageRoundTrip, TupleEncodedSizeIsExact) {
  Rng rng{10};
  for (int i = 0; i < kIterations; ++i) {
    const dataflow::Tuple t = random_tuple(rng);
    EXPECT_EQ(dataflow::encode_to_bytes(t).size(), t.encoded_size());
  }
}

// Golden wire bytes: the v2 encode()/decode() API must emit exactly the
// same octets the legacy Bytes-returning codec did, so same-seed runs and
// checked-in fuzz corpora stay valid across the API change.
TEST(MessageRoundTrip, GoldenDataMsgBytes) {
  DataMsg msg;
  msg.src_instance = InstanceId{1};
  msg.src_device = DeviceId{2};
  msg.dst_instance = InstanceId{3};
  msg.sent_ns = 0x0102030405060708;
  msg.accumulated = DelayBreakdown{};
  msg.tuple = dataflow::Tuple{TupleId{7}, SimTime{9}};
  msg.tuple_wire_size = msg.tuple.wire_size();

  const Bytes got = dataflow::encode_to_bytes(msg);
  Bytes want;
  ByteWriter w{want};
  w.write_u64(1);                    // src_instance
  w.write_u64(2);                    // src_device
  w.write_u64(3);                    // dst_instance
  w.write_i64(0x0102030405060708);   // sent_ns
  w.write_f64(0.0);                  // transmission_ms
  w.write_f64(0.0);                  // queuing_ms
  w.write_f64(0.0);                  // processing_ms
  w.write_varint(msg.tuple.wire_size());
  w.write_varint(17);                // tuple frame: 8 id + 8 time + 1 count
  w.write_u64(7);
  w.write_i64(9);
  w.write_varint(0);
  EXPECT_EQ(got, w.data());  // data() flushes the writer's staged tail.
}

// The pooled batch must frame each appended element independently: frames
// out must equal frames in, with all payload bytes living in one pool.
TEST(MessageRoundTrip, DataBatchPoolFraming) {
  Rng rng{11};
  std::vector<Bytes> frames;
  DataBatchMsg msg;
  for (int i = 0; i < 5; ++i) {
    frames.push_back(random_bytes(rng));
    msg.append_frame(frames.back());
  }
  const DataBatchMsg back =
      dataflow::decode_from<DataBatchMsg>(dataflow::encode_to_bytes(msg));
  ASSERT_EQ(back.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto f = back.frame(i);
    EXPECT_TRUE(std::equal(f.begin(), f.end(), frames[i].begin(),
                           frames[i].end()))
        << "frame " << i;
  }
}

}  // namespace
}  // namespace swing::runtime
