// Failure injection: corrupt payloads, hostile message sequences, races
// between control and data planes, and repeated membership churn. The
// framework must degrade (drop, log, count) — never crash or wedge.
#include <gtest/gtest.h>

#include "dataflow/codec.h"
#include "device/profile.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

namespace swing::runtime {
namespace {

dataflow::AppGraph tiny_app(double rate = 10.0, double cost = 20.0) {
  dataflow::AppGraph g;
  dataflow::SourceSpec spec;
  spec.rate_per_s = rate;
  spec.generate = [](TupleId id, SimTime, Rng&) {
    dataflow::Tuple t;
    t.set("payload", dataflow::Blob{4000, id.value()});
    return t;
  };
  const auto src = g.add_source("src", std::move(spec));
  const auto work = g.add_transform("work", dataflow::passthrough_unit(),
                                    dataflow::constant_cost(cost));
  const auto snk = g.add_sink("snk");
  g.connect(src, work).connect(work, snk);
  return g;
}

class FailureInjection : public ::testing::Test {
 protected:
  void start_two_device_swarm() {
    a_ = swarm_.add_device(device::profile_A(), {1.0, 0.0});
    b_ = swarm_.add_device(device::profile_H(), {2.0, 0.0});
    swarm_.launch_master(a_, tiny_app());
    swarm_.launch_worker(b_);
    sim_.run_for(seconds(1));
    swarm_.start();
    sim_.run_for(seconds(2));
  }

  Simulator sim_;
  runtime::Swarm swarm_{sim_};
  DeviceId a_, b_;
};

TEST_F(FailureInjection, CorruptDataPayloadDroppedAndCounted) {
  start_two_device_swarm();
  const auto before = swarm_.metrics().frames_arrived();
  // Garbage bytes labelled as data, control, and ACK messages.
  swarm_.transport().send(a_, b_, std::uint8_t(MsgType::kData),
                          Bytes{0xde, 0xad});
  swarm_.transport().send(a_, b_, std::uint8_t(MsgType::kDeploy),
                          Bytes{0xff});
  swarm_.transport().send(b_, a_, std::uint8_t(MsgType::kAck), Bytes{0x01});
  sim_.run_for(seconds(3));
  // The stream keeps flowing and the junk is accounted for.
  EXPECT_GT(swarm_.metrics().frames_arrived(), before + 20);
  EXPECT_GE(swarm_.worker(b_)->malformed_messages(), 2u);
  EXPECT_GE(swarm_.worker(a_)->malformed_messages(), 1u);
}

TEST_F(FailureInjection, CorruptControlToMasterIgnored) {
  start_two_device_swarm();
  swarm_.transport().send(b_, a_, std::uint8_t(MsgType::kLeaveReport),
                          Bytes{0x80, 0x80});  // Malformed device id.
  sim_.run_for(seconds(1));
  EXPECT_TRUE(swarm_.master()->is_member(b_));  // Nothing was removed.
}

TEST_F(FailureInjection, UnknownMessageTypeIgnored) {
  start_two_device_swarm();
  swarm_.transport().send(a_, b_, 0xEE, Bytes{1, 2, 3});
  sim_.run_for(seconds(1));
  EXPECT_GT(swarm_.metrics().frames_arrived(), 0u);
}

TEST_F(FailureInjection, DataForUnknownInstanceBuffered) {
  start_two_device_swarm();
  DataMsg stray;
  stray.src_instance = InstanceId{900};
  stray.src_device = a_;
  stray.dst_instance = InstanceId{901};  // Never deployed.
  stray.sent_ns = sim_.now().nanos();
  stray.tuple = dataflow::Tuple{TupleId{1}, sim_.now()};
  stray.tuple_wire_size = 100;
  for (int i = 0; i < 500; ++i) {  // Past the pending cap.
    swarm_.transport().send(a_, b_, std::uint8_t(MsgType::kData),
                            dataflow::encode_to_bytes(stray));
    sim_.run_for(millis(20));
  }
  sim_.run_for(seconds(1));  // No crash, no unbounded growth.
  EXPECT_GT(swarm_.metrics().frames_arrived(), 0u);
}

TEST_F(FailureInjection, DuplicateDeployIgnored) {
  start_two_device_swarm();
  const auto instances = swarm_.worker(b_)->instance_count();
  // Replay the deploy of an instance the worker already activated.
  const auto existing =
      swarm_.master()->instances_of(swarm_.graph().operators()[1].id);
  ASSERT_FALSE(existing.empty());
  DeployMsg replay;
  DeployMsg::Assignment assign;
  assign.self = existing.front();
  replay.assignments.push_back(assign);
  swarm_.transport().send(a_, b_, std::uint8_t(MsgType::kDeploy),
                          dataflow::encode_to_bytes(replay));
  sim_.run_for(seconds(1));
  EXPECT_EQ(swarm_.worker(b_)->instance_count(), instances);
}

TEST_F(FailureInjection, RemoveDownstreamForUnknownInstanceIsNoop) {
  start_two_device_swarm();
  RouteUpdateMsg update{InstanceId{},
                        InstanceInfo{InstanceId{999}, OperatorId{1}, b_}};
  swarm_.transport().send(a_, b_, std::uint8_t(MsgType::kRemoveDownstream),
                          dataflow::encode_to_bytes(update));
  sim_.run_for(seconds(2));
  EXPECT_GT(swarm_.metrics().frames_arrived(), 20u);
}

TEST_F(FailureInjection, LeaveDuringBlockedSend) {
  // A source blocked on a congested connection whose peer then dies must
  // unblock and not send to the dead peer.
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  swarm_.launch_master(a, tiny_app(24.0, 30.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();
  sim_.run_for(seconds(2));
  swarm_.medium().set_rssi_override(b, -78.0);  // Congest the connection.
  sim_.run_for(seconds(2));
  swarm_.leave_abruptly(b);
  sim_.run_for(seconds(5));  // Must not crash or livelock.
  EXPECT_FALSE(swarm_.master()->is_member(b));
}

TEST_F(FailureInjection, RepeatedChurnSurvives) {
  const auto a = swarm_.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm_.add_device(device::profile_H(), {2.0, 0.0});
  std::vector<DeviceId> churners;
  for (int i = 0; i < 4; ++i) {
    churners.push_back(
        swarm_.add_device(device::profile_G(), {2.0 + i, 0.0}));
  }
  swarm_.launch_master(a, tiny_app(20.0, 60.0));
  swarm_.launch_worker(b);
  sim_.run_for(seconds(1));
  swarm_.start();

  // Join and abruptly kill helpers in waves.
  for (DeviceId id : churners) {
    swarm_.launch_worker(id);
    sim_.run_for(seconds(3));
    swarm_.leave_abruptly(id);
    sim_.run_for(seconds(2));
  }
  sim_.run_for(seconds(5));
  // The persistent worker keeps the stream alive throughout.
  const SimTime t = sim_.now();
  EXPECT_GT(swarm_.metrics().throughput_fps(t - seconds(4), t), 8.0);
  EXPECT_EQ(swarm_.master()->member_count(), 2u);
}

TEST_F(FailureInjection, AllWorkersLeave) {
  start_two_device_swarm();
  swarm_.leave_abruptly(b_);
  sim_.run_for(seconds(5));
  const auto stalled =
      swarm_.metrics().drops(core::DropReason::kNoDownstream);
  EXPECT_GT(stalled, 0u);  // Source has nowhere to route.
  // A replacement shows up and the stream resumes.
  const auto c = swarm_.add_device(device::profile_I(), {2.0, 1.0});
  swarm_.launch_worker(c);
  sim_.run_for(seconds(5));
  const SimTime t = sim_.now();
  EXPECT_GT(swarm_.metrics().throughput_fps(t - seconds(2), t), 8.0);
}

TEST_F(FailureInjection, SinkDeviceNeverLosesItsOwnServices) {
  start_two_device_swarm();
  // Hostile LeaveReport claiming the master's own device is gone.
  swarm_.transport().send(b_, a_, std::uint8_t(MsgType::kLeaveReport),
                          dataflow::encode_to_bytes(DeviceMsg{a_}));
  sim_.run_for(seconds(3));
  // The master removed its own registration; behaviour must stay sane —
  // in particular no crash and the worker b remains a member.
  EXPECT_TRUE(swarm_.master()->is_member(b_));
}

}  // namespace
}  // namespace swing::runtime
