#include "dataflow/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace swing::dataflow {
namespace {

SourceSpec test_source(double rate = 10.0) {
  SourceSpec spec;
  spec.rate_per_s = rate;
  spec.generate = [](TupleId, SimTime, Rng&) { return Tuple{}; };
  return spec;
}

AppGraph linear_graph() {
  AppGraph g;
  const auto src = g.add_source("src", test_source());
  const auto mid = g.add_transform("mid", passthrough_unit(),
                                   constant_cost(10.0));
  const auto snk = g.add_sink("snk");
  g.connect(src, mid).connect(mid, snk);
  return g;
}

TEST(AppGraph, LinearGraphValidates) {
  EXPECT_NO_THROW(linear_graph().validate());
}

TEST(AppGraph, OperatorMetadata) {
  AppGraph g = linear_graph();
  ASSERT_EQ(g.operators().size(), 3u);
  EXPECT_EQ(g.op(g.sources()[0]).kind, OperatorKind::kSource);
  EXPECT_EQ(g.op(g.sources()[0]).placement, Placement::kMaster);
  EXPECT_EQ(g.op(g.sinks()[0]).placement, Placement::kMaster);
}

TEST(AppGraph, TransformDefaultsToWorkers) {
  AppGraph g = linear_graph();
  for (const auto& op : g.operators()) {
    if (op.kind == OperatorKind::kTransform) {
      EXPECT_EQ(op.placement, Placement::kWorkers);
    }
  }
}

TEST(AppGraph, UpDownstreams) {
  AppGraph g = linear_graph();
  const auto src = g.sources()[0];
  const auto snk = g.sinks()[0];
  ASSERT_EQ(g.downstreams(src).size(), 1u);
  const auto mid = g.downstreams(src)[0];
  EXPECT_EQ(g.upstreams(mid), std::vector<OperatorId>{src});
  EXPECT_EQ(g.downstreams(mid), std::vector<OperatorId>{snk});
  EXPECT_TRUE(g.downstreams(snk).empty());
}

TEST(AppGraph, DuplicateNameRejected) {
  AppGraph g;
  g.add_source("x", test_source());
  EXPECT_THROW(g.add_transform("x", passthrough_unit(), nullptr), GraphError);
}

TEST(AppGraph, SourceNeedsGenerator) {
  AppGraph g;
  EXPECT_THROW(g.add_source("s", SourceSpec{}), GraphError);
}

TEST(AppGraph, SourceNeedsPositiveRate) {
  AppGraph g;
  SourceSpec spec = test_source(0.0);
  EXPECT_THROW(g.add_source("s", std::move(spec)), GraphError);
}

TEST(AppGraph, TransformNeedsFactory) {
  AppGraph g;
  EXPECT_THROW(g.add_transform("t", nullptr, nullptr), GraphError);
}

TEST(AppGraph, SelfEdgeRejected) {
  AppGraph g;
  const auto src = g.add_source("s", test_source());
  EXPECT_THROW(g.connect(src, src), GraphError);
}

TEST(AppGraph, DuplicateEdgeRejected) {
  AppGraph g;
  const auto src = g.add_source("s", test_source());
  const auto snk = g.add_sink("k");
  g.connect(src, snk);
  EXPECT_THROW(g.connect(src, snk), GraphError);
}

TEST(AppGraph, UnknownIdRejected) {
  AppGraph g;
  const auto src = g.add_source("s", test_source());
  EXPECT_THROW(g.connect(src, OperatorId{999}), GraphError);
  EXPECT_THROW(static_cast<void>(g.op(OperatorId{999})), GraphError);
}

TEST(AppGraph, NoSourceFailsValidation) {
  AppGraph g;
  const auto a = g.add_transform("a", passthrough_unit(), nullptr);
  const auto snk = g.add_sink("k");
  g.connect(a, snk);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST(AppGraph, NoSinkFailsValidation) {
  AppGraph g;
  const auto src = g.add_source("s", test_source());
  const auto a = g.add_transform("a", passthrough_unit(), nullptr);
  g.connect(src, a);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST(AppGraph, DisconnectedTransformFailsValidation) {
  AppGraph g;
  const auto src = g.add_source("s", test_source());
  const auto snk = g.add_sink("k");
  g.add_transform("orphan", passthrough_unit(), nullptr);
  g.connect(src, snk);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST(AppGraph, SourceWithNoDownstreamFailsValidation) {
  AppGraph g;
  g.add_source("s", test_source());
  const auto src2 = g.add_source("s2", test_source());
  const auto snk = g.add_sink("k");
  g.connect(src2, snk);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST(AppGraph, CycleDetected) {
  AppGraph g;
  const auto src = g.add_source("s", test_source());
  const auto a = g.add_transform("a", passthrough_unit(), nullptr);
  const auto b = g.add_transform("b", passthrough_unit(), nullptr);
  const auto snk = g.add_sink("k");
  g.connect(src, a).connect(a, b).connect(b, a);
  g.connect(b, snk);
  EXPECT_THROW(g.topological_order(), GraphError);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST(AppGraph, TopologicalOrderRespectsEdges) {
  AppGraph g;
  const auto src = g.add_source("s", test_source());
  const auto a = g.add_transform("a", passthrough_unit(), nullptr);
  const auto b = g.add_transform("b", passthrough_unit(), nullptr);
  const auto snk = g.add_sink("k");
  g.connect(src, a).connect(src, b).connect(a, snk).connect(b, snk);

  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](OperatorId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(src), pos(a));
  EXPECT_LT(pos(src), pos(b));
  EXPECT_LT(pos(a), pos(snk));
  EXPECT_LT(pos(b), pos(snk));
}

TEST(AppGraph, FanOutFanInValidates) {
  AppGraph g;
  const auto src = g.add_source("s", test_source());
  const auto a = g.add_transform("a", passthrough_unit(), nullptr);
  const auto b = g.add_transform("b", passthrough_unit(), nullptr);
  const auto snk = g.add_sink("k");
  g.connect(src, a).connect(src, b).connect(a, snk).connect(b, snk);
  EXPECT_NO_THROW(g.validate());
}

TEST(AppGraph, MaxReplicasStored) {
  AppGraph g;
  const auto t = g.add_transform("t", passthrough_unit(), nullptr, 3);
  EXPECT_EQ(g.op(t).max_replicas, 3u);
}

TEST(AppGraph, DefaultSinkCostIsZero) {
  AppGraph g;
  const auto snk = g.add_sink("k");
  Tuple t;
  EXPECT_DOUBLE_EQ(g.op(snk).cost(t), 0.0);
}

TEST(FunctionUnits, MapUnitTransforms) {
  auto factory = map_unit([](const Tuple& in) {
    Tuple out = in.derive();
    out.set("doubled", *in.get_as<std::int64_t>("x") * 2);
    return out;
  });
  auto unit = factory();

  // Minimal context capturing emissions.
  struct CaptureCtx final : Context {
    void emit(Tuple t) override { out.push_back(std::move(t)); }
    SimTime now() const override { return SimTime{}; }
    DeviceId device() const override { return DeviceId{0}; }
    InstanceId instance() const override { return InstanceId{0}; }
    Rng& rng() override { return rng_; }
    std::vector<Tuple> out;
    Rng rng_{1};
  } ctx;

  Tuple in;
  in.set("x", std::int64_t{21});
  unit->process(in, ctx);
  ASSERT_EQ(ctx.out.size(), 1u);
  EXPECT_EQ(*ctx.out[0].get_as<std::int64_t>("doubled"), 42);
}

}  // namespace
}  // namespace swing::dataflow
