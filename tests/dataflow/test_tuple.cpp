#include "dataflow/tuple.h"

#include <gtest/gtest.h>

#include "dataflow/codec.h"

namespace swing::dataflow {
namespace {

TEST(Tuple, SetAndGet) {
  Tuple t;
  t.set("k", std::int64_t{42});
  const auto* v = t.get_as<std::int64_t>("k");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 42);
}

TEST(Tuple, MissingKeyIsNull) {
  Tuple t;
  EXPECT_EQ(t.get("nope"), nullptr);
  EXPECT_EQ(t.get_as<double>("nope"), nullptr);
}

TEST(Tuple, WrongTypeIsNull) {
  Tuple t;
  t.set("k", std::string{"text"});
  EXPECT_EQ(t.get_as<std::int64_t>("k"), nullptr);
  EXPECT_NE(t.get_as<std::string>("k"), nullptr);
}

TEST(Tuple, SetOverwritesExistingKey) {
  Tuple t;
  t.set("k", std::int64_t{1});
  t.set("k", std::int64_t{2});
  EXPECT_EQ(t.field_count(), 1u);
  EXPECT_EQ(*t.get_as<std::int64_t>("k"), 2);
}

TEST(Tuple, FieldOrderPreserved) {
  Tuple t;
  t.set("z", std::int64_t{1});
  t.set("a", std::int64_t{2});
  EXPECT_EQ(t.fields()[0].first, "z");
  EXPECT_EQ(t.fields()[1].first, "a");
}

TEST(Tuple, DeriveKeepsIdentityDropsFields) {
  Tuple t{TupleId{7}, SimTime{} + seconds(3)};
  t.set("k", std::int64_t{1});
  const Tuple d = t.derive();
  EXPECT_EQ(d.id(), TupleId{7});
  EXPECT_EQ(d.source_time(), SimTime{} + seconds(3));
  EXPECT_EQ(d.field_count(), 0u);
}

TEST(TupleSerialization, RoundTripAllTypes) {
  Tuple t{TupleId{99}, SimTime{} + millis(1234)};
  t.set("null", std::monostate{});
  t.set("int", std::int64_t{-5});
  t.set("float", 2.75);
  t.set("str", std::string{"hola"});
  t.set("bytes", Bytes{1, 2, 3});
  t.set("blob", Blob{6000, 17});

  const Tuple back = decode_from<Tuple>(encode_to_bytes(t));
  EXPECT_EQ(back, t);
}

TEST(TupleSerialization, EmptyTuple) {
  Tuple t{TupleId{1}, SimTime{}};
  const Tuple back = decode_from<Tuple>(encode_to_bytes(t));
  EXPECT_EQ(back.id(), TupleId{1});
  EXPECT_EQ(back.field_count(), 0u);
}

TEST(TupleSerialization, CorruptBufferThrows) {
  Bytes garbage = {0xff, 0x01, 0x02};
  EXPECT_THROW(decode_from<Tuple>(garbage), WireFormatError);
}

TEST(TupleSerialization, BlobNotMaterialised) {
  // A 1 MB blob must serialize to a handful of bytes but count fully in
  // wire_size.
  Tuple t{TupleId{1}, SimTime{}};
  t.set("frame", Blob{1'000'000, 1});
  EXPECT_LT(encode_to_bytes(t).size(), 64u);
  EXPECT_EQ(encode_to_bytes(t).size(), t.encoded_size());
  EXPECT_GT(t.wire_size(), 1'000'000u);
}

TEST(TupleSerialization, WireSizeTracksPayload) {
  Tuple small{TupleId{1}, SimTime{}};
  small.set("frame", Blob{100, 1});
  Tuple large{TupleId{1}, SimTime{}};
  large.set("frame", Blob{72000, 1});
  EXPECT_GT(large.wire_size(), small.wire_size() + 70000);
}

TEST(TupleSerialization, RealBytesCopiedVerbatim) {
  Tuple t{TupleId{1}, SimTime{}};
  Bytes payload(1000, 0xab);
  t.set("img", payload);
  const Tuple back = decode_from<Tuple>(encode_to_bytes(t));
  EXPECT_EQ(*back.get_as<Bytes>("img"), payload);
}

TEST(ValueWireSize, Sizes) {
  EXPECT_EQ(value_wire_size(Value{std::monostate{}}), 1u);
  EXPECT_EQ(value_wire_size(Value{std::int64_t{1}}), 9u);
  EXPECT_EQ(value_wire_size(Value{1.0}), 9u);
  EXPECT_EQ(value_wire_size(Value{std::string("abc")}), 9u);
  EXPECT_EQ(value_wire_size(Value{Blob{500, 0}}), 511u);
}

}  // namespace
}  // namespace swing::dataflow
