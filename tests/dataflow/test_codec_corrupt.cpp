// Bounds handling for untrusted byte streams (DESIGN.md "Correctness
// tooling"): every malformed frame must surface as a WireFormatError with
// the buffer intact — never an out-of-bounds read, abort, or huge
// allocation.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "dataflow/codec.h"
#include "dataflow/tuple.h"

namespace swing::dataflow {
namespace {

Tuple sample_tuple() {
  Tuple t{TupleId{42}, SimTime{1'000'000}};
  t.set("camera", std::string("front"));
  t.set("frame", std::int64_t{7});
  t.set("score", 0.625);
  t.set("payload", Bytes{1, 2, 3, 4, 5});
  t.set("blob", Blob{.size = 64 * 1024, .tag = 3});
  return t;
}

TEST(CodecCorrupt, EveryTruncationThrowsCleanly) {
  const Bytes full = encode_to_bytes(sample_tuple());
  ASSERT_GT(full.size(), 0u);
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + long(len));
    EXPECT_THROW(decode_from<Tuple>(cut), WireFormatError)
        << "prefix of " << len << "/" << full.size()
        << " bytes decoded without error";
  }
  EXPECT_NO_THROW(decode_from<Tuple>(full));
}

TEST(CodecCorrupt, UnknownValueTagThrows) {
  ByteWriter w;
  w.write_u64(1);    // id
  w.write_i64(0);    // source_time
  w.write_varint(1); // one field
  w.write_string("k");
  w.write_u8(0xEE);  // no such value tag
  EXPECT_THROW(decode_from<Tuple>(w.data()), WireFormatError);
}

TEST(CodecCorrupt, HugeFieldCountThrowsWithoutAllocating) {
  ByteWriter w;
  w.write_u64(1);
  w.write_i64(0);
  w.write_varint(std::uint64_t{1} << 60);  // Claims ~10^18 fields.
  EXPECT_THROW(decode_from<Tuple>(w.data()), WireFormatError);
}

TEST(CodecCorrupt, OversizedStringLengthThrows) {
  ByteWriter w;
  w.write_u64(1);
  w.write_i64(0);
  w.write_varint(1);
  w.write_varint(1'000'000);  // Key claims a megabyte; buffer ends here.
  EXPECT_THROW(decode_from<Tuple>(w.data()), WireFormatError);
}

TEST(CodecCorrupt, OversizedBytesLengthThrows) {
  ByteWriter w;
  w.write_u64(1);
  w.write_i64(0);
  w.write_varint(1);
  w.write_string("payload");
  w.write_u8(4);               // kBytes tag.
  w.write_varint(1 << 30);     // Claims 1 GiB body; none present.
  EXPECT_THROW(decode_from<Tuple>(w.data()), WireFormatError);
}

TEST(CodecCorrupt, MalformedVarintFieldCountThrows) {
  ByteWriter w;
  w.write_u64(1);
  w.write_i64(0);
  for (int i = 0; i < 11; ++i) w.write_u8(0x80);  // Endless continuation.
  EXPECT_THROW(decode_from<Tuple>(w.data()), WireFormatError);
}

TEST(CodecCorrupt, UnderrunErrorReportsOffsets) {
  ByteWriter w;
  w.write_varint(100);  // String claims 100 bytes; zero follow.
  ByteReader r{w.data()};
  try {
    r.read_string();
    FAIL() << "expected WireFormatError";
  } catch (const WireFormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("string body"), std::string::npos) << what;
    EXPECT_NE(what.find("100"), std::string::npos) << what;
  }
}

TEST(CodecCorrupt, PackedDecodeFailureThrowsTyped) {
  struct Pair {
    std::int64_t a = 0, b = 0;
    void encode(ByteWriter& w) const {
      w.write_i64(a);
      w.write_i64(b);
    }
    static Pair decode(ByteReader& r) {
      Pair out;
      out.a = r.read_i64();
      out.b = r.read_i64();
      return out;
    }
  };
  Tuple t;
  t.set("pair", Bytes{1, 2, 3});  // Too short to hold two i64s.
  EXPECT_THROW(get_packed<Pair>(t, "pair"), WireFormatError);
}

}  // namespace
}  // namespace swing::dataflow
