#include "dataflow/codec.h"

#include <gtest/gtest.h>

#include "apps/gesture_recognition.h"

namespace swing::dataflow {
namespace {

struct Reading {
  std::int64_t sensor = 0;
  double value = 0.0;

  void encode(ByteWriter& w) const {
    w.write_i64(sensor);
    w.write_f64(value);
  }
  static Reading decode(ByteReader& r) {
    Reading out;
    out.sensor = r.read_i64();
    out.value = r.read_f64();
    return out;
  }
};

static_assert(WireCodec<Reading>);
static_assert(WireCodec<apps::GestureFeatures>);
static_assert(!WireCodec<int>);

TEST(Codec, RoundTrip) {
  Tuple t;
  set_packed(t, "reading", Reading{7, 3.25});
  const auto back = get_packed<Reading>(t, "reading");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sensor, 7);
  EXPECT_DOUBLE_EQ(back->value, 3.25);
}

TEST(Codec, MissingKeyIsNullopt) {
  Tuple t;
  EXPECT_FALSE(get_packed<Reading>(t, "nope").has_value());
}

TEST(Codec, WrongFieldTypeIsNullopt) {
  Tuple t;
  t.set("reading", std::string{"not bytes"});
  EXPECT_FALSE(get_packed<Reading>(t, "reading").has_value());
}

TEST(Codec, TruncatedBytesThrow) {
  Tuple t;
  t.set("reading", Bytes{1, 2});
  EXPECT_THROW(get_packed<Reading>(t, "reading"), WireFormatError);
}

TEST(Codec, SurvivesTupleSerialization) {
  Tuple t{TupleId{5}, SimTime{}};
  set_packed(t, "reading", Reading{42, -1.5});
  const Tuple back = decode_from<Tuple>(encode_to_bytes(t));
  const auto reading = get_packed<Reading>(back, "reading");
  ASSERT_TRUE(reading.has_value());
  EXPECT_EQ(reading->sensor, 42);
}

TEST(Codec, WorksWithAppTypes) {
  apps::GestureFeatures f;
  f.energy = 4.5f;
  Tuple t;
  set_packed(t, "features", f);
  const auto back = get_packed<apps::GestureFeatures>(t, "features");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->energy, 4.5f);
}

}  // namespace
}  // namespace swing::dataflow
