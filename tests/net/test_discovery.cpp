#include "net/discovery.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace swing::net {
namespace {

TEST(Discovery, WatcherSeesExistingService) {
  Simulator sim;
  Discovery discovery{sim};
  discovery.advertise("svc", DeviceId{1}, Bytes{9});

  DeviceId found{};
  Bytes info;
  discovery.watch("svc", [&](DeviceId provider, const Bytes& i) {
    found = provider;
    info = i;
  });
  sim.run();
  EXPECT_EQ(found, DeviceId{1});
  EXPECT_EQ(info, Bytes{9});
}

TEST(Discovery, WatcherSeesFutureService) {
  Simulator sim;
  Discovery discovery{sim};
  DeviceId found{};
  discovery.watch("svc", [&](DeviceId provider, const Bytes&) {
    found = provider;
  });
  sim.run();
  EXPECT_FALSE(found.valid());
  discovery.advertise("svc", DeviceId{2}, Bytes{});
  sim.run();
  EXPECT_EQ(found, DeviceId{2});
}

TEST(Discovery, PropagationDelay) {
  Simulator sim;
  Discovery discovery{sim, millis(120)};
  SimTime seen;
  discovery.watch("svc", [&](DeviceId, const Bytes&) { seen = sim.now(); });
  discovery.advertise("svc", DeviceId{1}, Bytes{});
  sim.run();
  EXPECT_EQ(seen, SimTime{} + millis(120));
}

TEST(Discovery, ServiceNamesAreIsolated) {
  Simulator sim;
  Discovery discovery{sim};
  int calls = 0;
  discovery.watch("svc-a", [&](DeviceId, const Bytes&) { ++calls; });
  discovery.advertise("svc-b", DeviceId{1}, Bytes{});
  sim.run();
  EXPECT_EQ(calls, 0);
}

TEST(Discovery, MultipleWatchers) {
  Simulator sim;
  Discovery discovery{sim};
  int calls = 0;
  discovery.watch("svc", [&](DeviceId, const Bytes&) { ++calls; });
  discovery.watch("svc", [&](DeviceId, const Bytes&) { ++calls; });
  discovery.advertise("svc", DeviceId{1}, Bytes{});
  sim.run();
  EXPECT_EQ(calls, 2);
}

TEST(Discovery, WithdrawHidesFromNewWatchers) {
  Simulator sim;
  Discovery discovery{sim};
  discovery.advertise("svc", DeviceId{1}, Bytes{});
  discovery.withdraw("svc", DeviceId{1});
  int calls = 0;
  discovery.watch("svc", [&](DeviceId, const Bytes&) { ++calls; });
  sim.run();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(discovery.provider_count("svc"), 0u);
}

TEST(Discovery, ProviderCount) {
  Simulator sim;
  Discovery discovery{sim};
  EXPECT_EQ(discovery.provider_count("svc"), 0u);
  discovery.advertise("svc", DeviceId{1}, Bytes{});
  discovery.advertise("svc", DeviceId{2}, Bytes{});
  EXPECT_EQ(discovery.provider_count("svc"), 2u);
}

}  // namespace
}  // namespace swing::net
