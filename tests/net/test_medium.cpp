#include "net/medium.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace swing::net {
namespace {

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : medium_(sim_) {
    medium_.attach(a_, Position{1.0, 0.0});
    medium_.attach(b_, Position{2.0, 0.0});
    medium_.attach(c_, Position{2.0, 1.0});
  }

  Simulator sim_;
  Medium medium_;
  DeviceId a_{0}, b_{1}, c_{2};
};

TEST_F(MediumTest, AttachDetach) {
  EXPECT_TRUE(medium_.attached(a_));
  medium_.detach(a_);
  EXPECT_FALSE(medium_.attached(a_));
}

TEST_F(MediumTest, RssiFollowsPosition) {
  const double near = medium_.rssi(a_);
  medium_.set_position(a_, Position{40.0, 0.0});
  EXPECT_LT(medium_.rssi(a_), near);
}

TEST_F(MediumTest, RssiOverrideWins) {
  medium_.set_rssi_override(a_, -75.0);
  EXPECT_DOUBLE_EQ(medium_.rssi(a_), -75.0);
  medium_.set_rssi_override(a_, std::nullopt);
  EXPECT_GT(medium_.rssi(a_), -40.0);
}

TEST_F(MediumTest, UnattachedRssiIsMinusInfinity) {
  EXPECT_LT(medium_.rssi(DeviceId{99}), -1000.0);
  EXPECT_FALSE(medium_.connected(DeviceId{99}));
}

TEST_F(MediumTest, DeliversMessage) {
  bool delivered = false;
  EXPECT_TRUE(medium_.send(a_, b_, 3000, [&] { delivered = true; }));
  sim_.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(medium_.delivered_messages(), 1u);
}

TEST_F(MediumTest, DeliveryTakesAirtime) {
  SimTime delivered_at;
  medium_.send(a_, b_, 6000, [&] { delivered_at = sim_.now(); });
  sim_.run();
  // 6 kB over two strong hops: ~a few ms, definitely not zero.
  EXPECT_GT(delivered_at, SimTime{});
  EXPECT_LT(delivered_at, SimTime{} + millis(50));
}

TEST_F(MediumTest, LargerMessagesTakeLonger) {
  SimTime small_done, large_done;
  medium_.send(a_, b_, 1000, [&] { small_done = sim_.now(); });
  sim_.run();
  Simulator sim2;
  Medium medium2{sim2};
  medium2.attach(a_, Position{1.0, 0.0});
  medium2.attach(b_, Position{2.0, 0.0});
  medium2.send(a_, b_, 60000, [&] { large_done = sim2.now(); });
  sim2.run();
  EXPECT_GT(large_done - SimTime{}, small_done - SimTime{});
}

TEST_F(MediumTest, LoopbackSkipsRadio) {
  bool delivered = false;
  medium_.send(a_, a_, 100000, [&] { delivered = true; });
  sim_.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(medium_.stats(a_).airtime_s, 0.0);
}

TEST_F(MediumTest, SenderDisconnectedFails) {
  medium_.set_rssi_override(a_, -100.0);
  bool dropped = false;
  DropReason reason{};
  EXPECT_FALSE(medium_.send(a_, b_, 100, [] {}, [&](DropReason r) {
    dropped = true;
    reason = r;
  }));
  EXPECT_TRUE(dropped);
  EXPECT_EQ(reason, DropReason::kSenderDisconnected);
}

TEST_F(MediumTest, ReceiverDisconnectedFails) {
  medium_.set_rssi_override(b_, -100.0);
  DropReason reason{};
  EXPECT_FALSE(
      medium_.send(a_, b_, 100, [] {}, [&](DropReason r) { reason = r; }));
  EXPECT_EQ(reason, DropReason::kReceiverDisconnected);
}

TEST_F(MediumTest, DetachDropsInFlight) {
  bool delivered = false;
  bool dropped = false;
  medium_.send(a_, b_, 150000, [&] { delivered = true; },
               [&](DropReason) { dropped = true; });
  sim_.run_for(micros(100));  // Transfer started, not finished.
  medium_.detach(b_);
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
}

TEST_F(MediumTest, UtilisationNeverExceedsOne) {
  // Saturating offered load: many large messages at once.
  for (int i = 0; i < 50; ++i) {
    medium_.send(a_, b_, 60000, [] {});
    medium_.send(a_, c_, 60000, [] {});
  }
  sim_.run();
  EXPECT_LE(medium_.utilisation(), 1.0001);
}

TEST_F(MediumTest, AirtimeAccountedToLinkDevice) {
  medium_.send(a_, b_, 15000, [] {});
  sim_.run();
  EXPECT_GT(medium_.stats(a_).airtime_s, 0.0);  // Uplink.
  EXPECT_GT(medium_.stats(b_).airtime_s, 0.0);  // Downlink.
  EXPECT_DOUBLE_EQ(medium_.stats(c_).airtime_s, 0.0);
}

TEST_F(MediumTest, BytesAccounted) {
  medium_.send(a_, b_, 4000, [] {});
  sim_.run();
  EXPECT_EQ(medium_.stats(a_).tx_bytes, 4000u);
  EXPECT_EQ(medium_.stats(b_).rx_bytes, 4000u);
}

TEST_F(MediumTest, WeakLinkConsumesMoreAirtime) {
  medium_.set_rssi_override(b_, -76.0);
  medium_.send(a_, b_, 6000, [] {});
  sim_.run();
  const double weak_airtime = medium_.stats(b_).airtime_s;

  Simulator sim2;
  Medium medium2{sim2};
  medium2.attach(a_, Position{1.0, 0.0});
  medium2.attach(b_, Position{2.0, 0.0});
  medium2.send(a_, b_, 6000, [] {});
  sim2.run();
  EXPECT_GT(weak_airtime, 5.0 * medium2.stats(b_).airtime_s);
}

// The 802.11 rate anomaly: traffic to a weak-signal receiver slows down an
// unrelated strong-signal flow sharing the channel.
TEST_F(MediumTest, RateAnomalySlowsOtherFlows) {
  // Baseline: strong-only flow completion time.
  Simulator sim2;
  Medium medium2{sim2};
  medium2.attach(a_, Position{1.0, 0.0});
  medium2.attach(c_, Position{2.0, 1.0});
  SimTime baseline;
  medium2.send(a_, c_, 30000, [&] { baseline = sim2.now(); });
  sim2.run();

  // Same flow, now sharing the channel with a weak-receiver flow.
  medium_.set_rssi_override(b_, -77.0);
  SimTime contended;
  medium_.send(a_, b_, 30000, [] {});
  medium_.send(a_, c_, 30000, [&] { contended = sim_.now(); });
  sim_.run();
  EXPECT_GT((contended - SimTime{}) / (baseline - SimTime{}), 2.0);
}

TEST_F(MediumTest, TcpWindowBlocksWhenFull) {
  medium_.set_rssi_override(b_, -78.0);  // Slow drain.
  // A message larger than the 16-packet window overshoots it (TCP buffers
  // one application write beyond the window)...
  EXPECT_TRUE(medium_.send(a_, b_, 30000, [] {}));
  // ...after which the connection admits nothing further.
  EXPECT_FALSE(medium_.can_accept(a_, b_, 1500));
  DropReason reason{};
  EXPECT_FALSE(
      medium_.send(a_, b_, 1500, [] {}, [&](DropReason r) { reason = r; }));
  EXPECT_EQ(reason, DropReason::kQueueFull);
}

TEST_F(MediumTest, WindowFreesAfterDelivery) {
  medium_.send(a_, b_, 30000, [] {});
  EXPECT_FALSE(medium_.can_accept(a_, b_, 1500));
  sim_.run();
  EXPECT_TRUE(medium_.can_accept(a_, b_, 30000));
  EXPECT_EQ(medium_.inflight_packets(a_, b_), 0u);
}

TEST_F(MediumTest, OversizeMessageAdmittedOnEmptyWindow) {
  // 100 kB >> 16-packet window, but admitted when nothing is inflight.
  EXPECT_TRUE(medium_.can_accept(a_, b_, 100000));
  bool delivered = false;
  EXPECT_TRUE(medium_.send(a_, b_, 100000, [&] { delivered = true; }));
  sim_.run();
  EXPECT_TRUE(delivered);
}

TEST_F(MediumTest, WindowsArePerPair) {
  medium_.set_rssi_override(b_, -78.0);
  medium_.send(a_, b_, 30000, [] {});
  EXPECT_FALSE(medium_.can_accept(a_, b_, 1500));
  EXPECT_TRUE(medium_.can_accept(a_, c_, 30000));
}

TEST_F(MediumTest, ManyMessagesAllDelivered) {
  int delivered = 0;
  int sent = 0;
  for (int i = 0; i < 100; ++i) {
    if (medium_.can_accept(a_, b_, 1500)) {
      medium_.send(a_, b_, 1500, [&] { ++delivered; });
      ++sent;
    }
    sim_.run_for(millis(2));
  }
  sim_.run();
  EXPECT_GT(sent, 50);
  EXPECT_EQ(delivered, sent);
}

TEST_F(MediumTest, GoodputPositiveWhenConnected) {
  EXPECT_GT(medium_.goodput_bps(a_), 1e6);
  medium_.set_rssi_override(a_, -78.0);
  EXPECT_GT(medium_.goodput_bps(a_), 0.0);
  EXPECT_LT(medium_.goodput_bps(a_), 1e6);
  medium_.set_rssi_override(a_, -100.0);
  EXPECT_DOUBLE_EQ(medium_.goodput_bps(a_), 0.0);
}

TEST_F(MediumTest, ZeroByteMessageDelivers) {
  bool delivered = false;
  medium_.send(a_, b_, 0, [&] { delivered = true; });
  sim_.run();
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace swing::net
