// Physics invariants of the shared medium under random traffic: byte
// conservation, bounded utilisation, airtime lower bounds, window
// accounting returning to zero. Parameterized over seeds and both modes.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "net/medium.h"
#include "sim/simulator.h"

namespace swing::net {
namespace {

struct Traffic {
  std::uint64_t sent_bytes = 0;
  std::uint64_t delivered_bytes = 0;
  int sent = 0;
  int delivered = 0;
  int dropped = 0;
};

class MediumPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, MediumMode>> {
};

TEST_P(MediumPropertyTest, InvariantsUnderRandomTraffic) {
  const auto [seed, mode] = GetParam();
  Rng rng{seed};
  Simulator sim;
  MediumConfig config;
  config.mode = mode;
  Medium medium{sim, config};

  const std::size_t n_devices = 3 + rng.uniform_int(6);
  std::vector<DeviceId> devices;
  for (std::size_t i = 0; i < n_devices; ++i) {
    devices.emplace_back(i);
    if (rng.uniform() < 0.3) {
      medium.attach(devices.back(), Position{1.0, 0.0});
      medium.set_rssi_override(devices.back(),
                               -40.0 - rng.uniform() * 38.0);
    } else {
      medium.attach(devices.back(),
                    Position{rng.uniform() * 30.0, rng.uniform() * 10.0});
    }
  }

  Traffic traffic;
  for (int step = 0; step < 300; ++step) {
    sim.run_for(millis(rng.uniform(1.0, 30.0)));
    const DeviceId src = devices[rng.uniform_int(devices.size())];
    const DeviceId dst = devices[rng.uniform_int(devices.size())];
    if (src == dst) continue;
    const std::size_t bytes = 100 + rng.uniform_int(50000);
    if (!medium.can_accept(src, dst, bytes)) continue;
    const bool accepted = medium.send(
        src, dst, bytes,
        [&traffic, bytes] {
          ++traffic.delivered;
          traffic.delivered_bytes += bytes;
        },
        [&traffic](DropReason) { ++traffic.dropped; });
    if (accepted) {
      ++traffic.sent;
      traffic.sent_bytes += bytes;
    }
  }
  sim.run();  // Drain everything.

  // Conservation: every accepted message either delivered or dropped.
  EXPECT_EQ(traffic.sent, traffic.delivered + traffic.dropped);
  // Nothing materialises out of thin air.
  EXPECT_LE(traffic.delivered_bytes, traffic.sent_bytes);
  // Utilisation is a fraction of wall time.
  EXPECT_GE(medium.utilisation(), 0.0);
  EXPECT_LE(medium.utilisation(), 1.0001);
  // All windows returned to zero after draining.
  for (DeviceId a : devices) {
    for (DeviceId b : devices) {
      EXPECT_EQ(medium.inflight_packets(a, b), 0u)
          << a << "->" << b;
    }
  }
  // Airtime lower bound: delivered bytes cannot beat the top PHY rate.
  const double total_airtime = medium.total_busy_airtime_s();
  const double hops = mode == MediumMode::kAdhoc ? 1.0 : 2.0;
  EXPECT_GE(total_airtime * kMcsTable[0].rate_bps * 1.01 + 1.0,
            double(traffic.delivered_bytes) * 8.0 * hops *
                MediumConfig{}.mac_efficiency)
      << "more bytes than the channel could physically carry";
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, MediumPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(MediumMode::kInfrastructure,
                                         MediumMode::kAdhoc)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) == MediumMode::kAdhoc ? "_adhoc"
                                                                  : "_infra");
    });

}  // namespace
}  // namespace swing::net
