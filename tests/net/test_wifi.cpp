#include "net/wifi.h"

#include <gtest/gtest.h>

namespace swing::net {
namespace {

TEST(PathLoss, RssiDecreasesWithDistance) {
  double prev = rssi_from_distance(1.0);
  for (double d : {2.0, 5.0, 10.0, 20.0, 50.0}) {
    const double r = rssi_from_distance(d);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(PathLoss, CloseRangeIsStrong) {
  EXPECT_GT(rssi_from_distance(0.5), -40.0);
}

TEST(PathLoss, InverseRoundTrips) {
  for (double rssi : {-40.0, -55.0, -65.0, -75.0}) {
    const double d = distance_for_rssi(rssi);
    EXPECT_NEAR(rssi_from_distance(d), rssi, 0.01);
  }
}

TEST(PathLoss, MinDistanceClamped) {
  EXPECT_DOUBLE_EQ(distance_for_rssi(0.0), PathLossConfig{}.min_distance_m);
}

TEST(LinkQuality, StrongSignalGetsTopMcs) {
  const auto lq = link_quality(-30.0);
  ASSERT_TRUE(lq.has_value());
  EXPECT_EQ(lq->mcs.index, 7);
  EXPECT_NEAR(lq->tries, 1.0, 0.05);
}

TEST(LinkQuality, OutOfRangeIsDisconnected) {
  EXPECT_FALSE(link_quality(-85.0).has_value());
  EXPECT_FALSE(link_quality(-100.0).has_value());
}

TEST(LinkQuality, EdgeOfRangeStillConnects) {
  EXPECT_TRUE(link_quality(kMcsTable[7].sensitivity_dbm).has_value());
}

// Property: effective goodput (rate / tries) is non-increasing as RSSI
// falls. This is what a rate controller guarantees and what the routing
// policies implicitly rely on.
TEST(LinkQuality, GoodputMonotoneInRssi) {
  double prev = 1e18;
  for (double rssi = -30.0; rssi >= -80.0; rssi -= 0.5) {
    const auto lq = link_quality(rssi);
    ASSERT_TRUE(lq.has_value()) << "rssi " << rssi;
    const double goodput = lq->mcs.rate_bps / lq->tries;
    EXPECT_LE(goodput, prev * 1.0001) << "rssi " << rssi;
    prev = goodput;
  }
}

TEST(LinkQuality, TriesAtLeastOne) {
  for (double rssi = -30.0; rssi >= -80.0; rssi -= 1.0) {
    const auto lq = link_quality(rssi);
    ASSERT_TRUE(lq.has_value());
    EXPECT_GE(lq->tries, 1.0);
  }
}

TEST(LinkQuality, WeakZoneCollapses) {
  // The paper's "Bad" zone (-80..-70) must be drastically slower than the
  // strong zone: that differential is what the L* policies exploit.
  const auto good = link_quality(-35.0);
  const auto bad = link_quality(-78.0);
  ASSERT_TRUE(good && bad);
  const double ratio = (good->mcs.rate_bps / good->tries) /
                       (bad->mcs.rate_bps / bad->tries);
  EXPECT_GT(ratio, 50.0);
}

TEST(ResidualLoss, ZeroAboveThreshold) {
  EXPECT_DOUBLE_EQ(residual_loss(-60.0), 0.0);
  EXPECT_DOUBLE_EQ(residual_loss(-65.0), 0.0);
}

TEST(ResidualLoss, GrowsBelowThreshold) {
  EXPECT_GT(residual_loss(-70.0), 0.0);
  EXPECT_GT(residual_loss(-78.0), residual_loss(-70.0));
}

TEST(ResidualLoss, Capped) {
  EXPECT_LE(residual_loss(-120.0), 0.92);
}

TEST(McsPer, HighAtZeroMargin) {
  const McsEntry mcs = kMcsTable[0];
  EXPECT_NEAR(mcs_packet_error_rate(mcs.sensitivity_dbm, mcs), 0.88, 1e-9);
}

TEST(McsPer, LowWithMargin) {
  const McsEntry mcs = kMcsTable[0];
  EXPECT_NEAR(mcs_packet_error_rate(mcs.sensitivity_dbm + 10.0, mcs), 0.01,
              1e-9);
}

TEST(McsPer, TotalLossBelowSensitivity) {
  const McsEntry mcs = kMcsTable[0];
  EXPECT_DOUBLE_EQ(mcs_packet_error_rate(mcs.sensitivity_dbm - 1.0, mcs),
                   1.0);
}

TEST(Position, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace swing::net
