#include "net/transport.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace swing::net {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : medium_(sim_), transport_(sim_, medium_) {
    medium_.attach(a_, Position{1.0, 0.0});
    medium_.attach(b_, Position{2.0, 0.0});
  }

  Simulator sim_;
  Medium medium_;
  Transport transport_;
  DeviceId a_{0}, b_{1};
};

TEST_F(TransportTest, DeliversTypedMessage) {
  Message received;
  bool got = false;
  transport_.register_device(b_, [&](const Message& m) {
    received = m;
    got = true;
  });
  Bytes payload = {1, 2, 3};
  EXPECT_TRUE(transport_.send(a_, b_, 7, payload));
  sim_.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(received.type, 7);
  EXPECT_EQ(received.payload, payload);
  EXPECT_EQ(received.src, a_);
  EXPECT_EQ(received.dst, b_);
}

TEST_F(TransportTest, SentAtStamped) {
  Message received;
  transport_.register_device(b_, [&](const Message& m) { received = m; });
  sim_.run_for(millis(100));
  transport_.send(a_, b_, 1, Bytes{});
  sim_.run();
  EXPECT_EQ(received.sent_at, SimTime{} + millis(100));
}

TEST_F(TransportTest, MessageIdsUnique) {
  std::vector<MessageId> ids;
  transport_.register_device(b_, [&](const Message& m) {
    ids.push_back(m.id);
  });
  for (int i = 0; i < 5; ++i) transport_.send(a_, b_, 1, Bytes{});
  sim_.run();
  ASSERT_EQ(ids.size(), 5u);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_NE(ids[i - 1], ids[i]);
}

TEST_F(TransportTest, UnregisteredHandlerDropsSilently) {
  EXPECT_TRUE(transport_.send(a_, b_, 1, Bytes{}));
  sim_.run();  // No crash, nothing delivered.
}

TEST_F(TransportTest, UnregisterStopsDelivery) {
  int count = 0;
  transport_.register_device(b_, [&](const Message&) { ++count; });
  transport_.send(a_, b_, 1, Bytes{});
  sim_.run();
  transport_.unregister_device(b_);
  transport_.send(a_, b_, 1, Bytes{});
  sim_.run();
  EXPECT_EQ(count, 1);
}

TEST_F(TransportTest, LinkWatcherFiresOnDeadPeer) {
  DeviceId reported{};
  transport_.set_link_watcher(a_, [&](DeviceId peer) { reported = peer; });
  medium_.set_rssi_override(b_, -100.0);
  EXPECT_FALSE(transport_.send(a_, b_, 1, Bytes{}));
  sim_.run();
  EXPECT_EQ(reported, b_);
}

TEST_F(TransportTest, LinkWatcherHasDetectionDelay) {
  SimTime fired;
  transport_.set_link_watcher(a_, [&](DeviceId) { fired = sim_.now(); });
  medium_.set_rssi_override(b_, -100.0);
  transport_.send(a_, b_, 1, Bytes{});
  sim_.run();
  EXPECT_GE(fired - SimTime{}, millis(100));  // Default detection 150 ms.
}

TEST_F(TransportTest, QueueFullIsNotLinkDown) {
  bool link_down = false;
  transport_.set_link_watcher(a_, [&](DeviceId) { link_down = true; });
  medium_.set_rssi_override(b_, -78.0);
  // Fill the window, then overflow it.
  transport_.send(a_, b_, 1, Bytes(20000));
  transport_.send(a_, b_, 1, Bytes(20000));
  sim_.run();
  EXPECT_FALSE(link_down);
}

TEST_F(TransportTest, CanSendTracksWindow) {
  EXPECT_TRUE(transport_.can_send(a_, b_, 1000));
  medium_.set_rssi_override(b_, -78.0);
  transport_.send(a_, b_, 0, Bytes{}, 30000);
  EXPECT_FALSE(transport_.can_send(a_, b_, 1500));
}

TEST_F(TransportTest, WireBytesOverrideUsed) {
  // A tiny payload declared as 60 kB on the wire must take far longer than
  // the same payload at its literal size.
  SimTime t_small, t_large;
  transport_.register_device(b_, [&](const Message&) { t_small = sim_.now(); });
  transport_.send(a_, b_, 1, Bytes{1});
  sim_.run();

  Simulator sim2;
  Medium medium2{sim2};
  Transport transport2{sim2, medium2};
  medium2.attach(a_, Position{1.0, 0.0});
  medium2.attach(b_, Position{2.0, 0.0});
  transport2.register_device(b_, [&](const Message&) { t_large = sim2.now(); });
  transport2.send(a_, b_, 1, Bytes{1}, 60000);
  sim2.run();
  EXPECT_GT((t_large - SimTime{}) / (t_small - SimTime{}), 5.0);
}

}  // namespace
}  // namespace swing::net
