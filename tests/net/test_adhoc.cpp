// Wi-Fi Direct / ad-hoc medium mode: one hop per message at the pairwise
// link rate (vs two AP-relayed hops in infrastructure mode).
#include <gtest/gtest.h>

#include "net/medium.h"
#include "sim/simulator.h"

namespace swing::net {
namespace {

MediumConfig adhoc_config() {
  MediumConfig config;
  config.mode = MediumMode::kAdhoc;
  return config;
}

class AdhocTest : public ::testing::Test {
 protected:
  AdhocTest() : medium_(sim_, adhoc_config()) {
    medium_.attach(a_, Position{0.0, 0.0});
    medium_.attach(b_, Position{3.0, 0.0});
  }

  Simulator sim_;
  Medium medium_;
  DeviceId a_{0}, b_{1};
};

TEST_F(AdhocTest, DeliversDirectly) {
  bool delivered = false;
  EXPECT_TRUE(medium_.send(a_, b_, 6000, [&] { delivered = true; }));
  sim_.run();
  EXPECT_TRUE(delivered);
}

TEST_F(AdhocTest, HalvesAirtimeVsInfrastructure) {
  medium_.send(a_, b_, 30000, [] {});
  sim_.run();
  const double adhoc_air = medium_.total_busy_airtime_s();

  Simulator sim2;
  Medium infra{sim2};
  infra.attach(a_, Position{0.0, 0.0});
  infra.attach(b_, Position{3.0, 0.0});
  infra.send(a_, b_, 30000, [] {});
  sim2.run();
  // Two hops vs one at comparable rates: ~2x the airtime.
  EXPECT_NEAR(infra.total_busy_airtime_s() / adhoc_air, 2.0, 0.5);
}

TEST_F(AdhocTest, PairRssiFollowsPairDistance) {
  // b close to a but far from the AP at the origin: the direct link is
  // what matters in ad-hoc mode.
  medium_.set_position(a_, Position{40.0, 0.0});
  medium_.set_position(b_, Position{41.0, 0.0});
  EXPECT_GT(medium_.pair_rssi(a_, b_), -50.0);  // 1 m apart.
  EXPECT_LT(medium_.rssi(a_), -70.0);           // Far from origin.
  bool delivered = false;
  medium_.send(a_, b_, 3000, [&] { delivered = true; });
  sim_.run_for(millis(100));
  EXPECT_TRUE(delivered);
}

TEST_F(AdhocTest, OutOfRangePairUnreachable) {
  medium_.set_position(b_, Position{5000.0, 0.0});
  EXPECT_FALSE(medium_.reachable(a_, b_));
  DropReason reason{};
  EXPECT_FALSE(
      medium_.send(a_, b_, 100, [] {}, [&](DropReason r) { reason = r; }));
  EXPECT_EQ(reason, DropReason::kReceiverDisconnected);
}

TEST_F(AdhocTest, ZoneOverrideCapsDirectLink) {
  // b pinned to a weak zone: even a physically-adjacent direct link
  // inherits the interference.
  medium_.set_rssi_override(b_, -78.0);
  EXPECT_DOUBLE_EQ(medium_.pair_rssi(a_, b_), -78.0);
}

TEST_F(AdhocTest, DriftOutOfRangeMidTransferDrops) {
  bool delivered = false;
  bool dropped = false;
  medium_.send(a_, b_, 150000, [&] { delivered = true; },
               [&](DropReason) { dropped = true; });
  sim_.run_for(millis(1));
  medium_.set_position(b_, Position{5000.0, 0.0});
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
}

TEST_F(AdhocTest, BytesAccountedOnce) {
  medium_.send(a_, b_, 4000, [] {});
  sim_.run();
  EXPECT_EQ(medium_.stats(a_).tx_bytes, 4000u);
  EXPECT_EQ(medium_.stats(b_).rx_bytes, 4000u);
}

TEST_F(AdhocTest, LoopbackStillFree) {
  bool delivered = false;
  medium_.send(a_, a_, 100000, [&] { delivered = true; });
  sim_.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(medium_.total_busy_airtime_s(), 0.0);
}

TEST_F(AdhocTest, WindowAccountingStillHolds) {
  medium_.set_rssi_override(b_, -78.0);
  medium_.send(a_, b_, 30000, [] {});
  EXPECT_FALSE(medium_.can_accept(a_, b_, 1500));
  sim_.run();
  EXPECT_TRUE(medium_.can_accept(a_, b_, 30000));
}

}  // namespace
}  // namespace swing::net
