// Checkpoint plane v2 chaos: crash-at-every-boundary 2PC migration, master
// volatile-state loss with peer-replica restore, and the delta cadence
// end-to-end. Fixtures are named State* for CI's state-smoke job, which
// runs this matrix under both asan-ubsan and tsan.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/scene_analysis.h"
#include "apps/testbed.h"
#include "core/tuple_ledger.h"
#include "runtime/scenario.h"

namespace swing {
namespace {

using apps::Testbed;
using apps::TestbedConfig;
using runtime::InstanceInfo;
using runtime::MigrationPhase;
using MigrationVictim = runtime::Swarm::MigrationVictim;

OperatorId find_op(const dataflow::AppGraph& graph, const std::string& name) {
  for (const auto& op : graph.operators()) {
    if (op.name == name) return op.id;
  }
  return OperatorId{};
}

TestbedConfig chaos_config(std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  config.workers = {"G", "H", "I"};  // Strong-signal trio.
  config.swarm.with_recovery().with_checkpointing(seconds(0.5));
  return config;
}

// The deterministic migration pair: source is the first fusion-hosting
// worker off the master device, target the next distinct one.
void pick_pair(runtime::Swarm& swarm, OperatorId fusion, DeviceId& from,
               DeviceId& to) {
  for (const auto& info : swarm.master()->instances_of(fusion)) {
    if (info.device == swarm.master()->device()) continue;
    if (!from.valid()) {
      from = info.device;
    } else if (info.device != from && !to.valid()) {
      to = info.device;
    }
  }
}

// Post-run invariant shared by every crash case: each pre-event fusion
// instance is registered exactly once (no stranded or duplicated copy) and
// none is booked on a device that crashed.
void expect_single_ownership(const std::vector<InstanceInfo>& before,
                             const std::vector<InstanceInfo>& after,
                             const std::vector<DeviceId>& dead) {
  ASSERT_EQ(after.size(), before.size());
  for (const auto& b : before) {
    int copies = 0;
    for (const auto& a : after) {
      if (a.instance != b.instance) continue;
      ++copies;
      for (const DeviceId d : dead) {
        EXPECT_NE(a.device, d) << "instance " << a.instance
                               << " still booked on the dead device " << d;
      }
    }
    EXPECT_EQ(copies, 1) << "instance " << b.instance << " has " << copies
                         << " live registrations";
  }
}

// --- 2PC crash matrix ------------------------------------------------------
// One test per (phase boundary, victim): start a migration and crash the
// victim synchronously the moment the coordinator crosses the phase. Every
// combination must end with exactly one live copy of the migrating
// instance, the ledger conserved, and zero audit violations.

struct CrashCase {
  MigrationPhase phase;
  MigrationVictim victim;
};

std::string case_name(const ::testing::TestParamInfo<CrashCase>& info) {
  static const char* kPhases[] = {"PrepareSent", "AckReceived", "CommitLogged",
                                  "Completed"};
  static const char* kVictims[] = {"Source", "Destination", "Master"};
  return std::string{kPhases[int(info.param.phase)]} + "Crash" +
         kVictims[int(info.param.victim)];
}

class StateChaos2PC : public ::testing::TestWithParam<CrashCase> {};

TEST_P(StateChaos2PC, CrashAtBoundaryLeavesExactlyOneOwner) {
  const CrashCase c = GetParam();
  Testbed bed{chaos_config(42)};
  bed.launch(apps::scene_analysis_graph({}));
  auto& swarm = bed.swarm();
  const OperatorId fusion = find_op(swarm.graph(), "fusion");

  const auto before = swarm.master()->instances_of(fusion);
  DeviceId from{}, to{};
  pick_pair(swarm, fusion, from, to);
  ASSERT_TRUE(from.valid());
  ASSERT_TRUE(to.valid());

  runtime::Scenario script{swarm};
  script.crash_during_migration_at(seconds(6.0), from, to, c.phase, c.victim);
  script.run_for(seconds(24.0));
  swarm.stop();
  bed.run(seconds(8.0));

  // No transaction may be left dangling: every PREPARE was driven to a
  // durable COMMIT or ABORT by the time the run drains.
  EXPECT_EQ(swarm.master()->pending_migration_count(), 0u);

  const core::AuditReport report = swarm.audit();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.conserved()) << report.summary();

  std::vector<DeviceId> dead;
  if (c.victim == MigrationVictim::kSource) dead.push_back(from);
  if (c.victim == MigrationVictim::kDestination) dead.push_back(to);
  expect_single_ownership(before, swarm.master()->instances_of(fusion), dead);
}

INSTANTIATE_TEST_SUITE_P(
    StateChaosMatrix, StateChaos2PC,
    ::testing::Values(
        CrashCase{MigrationPhase::kPrepareSent, MigrationVictim::kSource},
        CrashCase{MigrationPhase::kPrepareSent, MigrationVictim::kDestination},
        CrashCase{MigrationPhase::kPrepareSent, MigrationVictim::kMaster},
        CrashCase{MigrationPhase::kAckReceived, MigrationVictim::kSource},
        CrashCase{MigrationPhase::kAckReceived, MigrationVictim::kDestination},
        CrashCase{MigrationPhase::kAckReceived, MigrationVictim::kMaster},
        CrashCase{MigrationPhase::kCommitLogged, MigrationVictim::kSource},
        CrashCase{MigrationPhase::kCommitLogged,
                  MigrationVictim::kDestination},
        CrashCase{MigrationPhase::kCommitLogged, MigrationVictim::kMaster},
        CrashCase{MigrationPhase::kCompleted, MigrationVictim::kSource},
        CrashCase{MigrationPhase::kCompleted, MigrationVictim::kDestination},
        CrashCase{MigrationPhase::kCompleted, MigrationVictim::kMaster}),
    case_name);

// --- Master volatile-state loss + peer replica -----------------------------

TEST(StateChaosMasterLoss, PeerReplicaRestoresAfterMasterStateCrash) {
  // Long checkpoint interval so the master's chain store stays empty
  // between its state loss and the worker crash — the restore MUST come
  // from the peer replica, not a freshly re-shipped full.
  TestbedConfig config = chaos_config(42);
  config.swarm.with_checkpointing(seconds(5.0)).with_peer_replication();
  Testbed bed{config};
  bed.launch(apps::scene_analysis_graph({}));
  auto& swarm = bed.swarm();
  const OperatorId fusion = find_op(swarm.graph(), "fusion");

  const auto before = swarm.master()->instances_of(fusion);
  DeviceId victim{};
  for (const auto& info : before) {
    if (info.device != swarm.master()->device()) {
      victim = info.device;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());

  // Checkpoints land at ~5s and ~10s (replicated to a peer as they land);
  // the master forgets everything at 11s and the worker dies at 12s,
  // before any re-ship. The decision log and replica map survive.
  runtime::Scenario script{swarm};
  script.crash_master_state_at(seconds(11.0));
  script.crash_worker_at(seconds(12.0), victim);
  script.run_for(seconds(24.0));
  swarm.stop();
  bed.run(seconds(8.0));

  const core::AuditReport report = swarm.audit();
  EXPECT_TRUE(report.ok()) << report.summary();

  auto& reg = swarm.registry();
  EXPECT_GE(reg.counter("master_state_crashes").value(), 1u);
  EXPECT_GE(reg.counter("state_restores", {{"source", "peer"}}).value(), 1u)
      << "restore never took the peer-replica fallback";
  EXPECT_EQ(reg.counter("state_restores", {{"source", "lost"}}).value(), 0u)
      << "state was declared lost despite a live replica";

  expect_single_ownership(before, swarm.master()->instances_of(fusion),
                          {victim});
}

// --- Delta cadence end-to-end ----------------------------------------------

struct DeltaRun {
  core::AuditReport report;
  std::uint64_t ledger_digest = 0;
  std::string registry_snapshot;
  std::uint64_t deltas_taken = 0;
  std::uint64_t state_bytes = 0;
  std::uint64_t restored = 0;
  std::vector<InstanceInfo> before, after;
  DeviceId crashed;
};

DeltaRun run_delta_crash(std::uint64_t seed, std::size_t deltas_per_full) {
  TestbedConfig config = chaos_config(seed);
  if (deltas_per_full > 0) {
    config.swarm.with_delta_checkpointing(deltas_per_full);
  }
  Testbed bed{config};
  bed.launch(apps::scene_analysis_graph({}));
  auto& swarm = bed.swarm();
  const OperatorId fusion = find_op(swarm.graph(), "fusion");

  DeltaRun out;
  out.before = swarm.master()->instances_of(fusion);
  for (const auto& info : out.before) {
    if (info.device != swarm.master()->device()) {
      out.crashed = info.device;
      break;
    }
  }
  EXPECT_TRUE(out.crashed.valid());

  runtime::Scenario script{swarm};
  script.crash_worker_at(seconds(8.0), out.crashed);
  script.run_for(seconds(24.0));
  swarm.stop();
  bed.run(seconds(8.0));

  out.report = swarm.audit();
  out.ledger_digest = swarm.ledger().digest();
  out.registry_snapshot = swarm.registry().snapshot().dump();
  out.deltas_taken = swarm.metrics().deltas_taken();
  out.state_bytes = swarm.metrics().state_bytes();
  out.restored = swarm.metrics().checkpoints_restored();
  out.after = swarm.master()->instances_of(fusion);
  return out;
}

TEST(StateChaosDelta, DeltaChainRestoresCrashedJoinWithFewerBytes) {
  const DeltaRun delta = run_delta_crash(42, 4);
  EXPECT_TRUE(delta.report.ok()) << delta.report.summary();
  EXPECT_GT(delta.deltas_taken, 0u) << "delta cadence never engaged";
  EXPECT_GE(delta.restored, 1u) << "crash never triggered a restore";
  expect_single_ownership(delta.before, delta.after, {delta.crashed});

  // The point of the journal: the same run full-only ships strictly more
  // checkpoint bytes for the same recovery outcome.
  const DeltaRun full = run_delta_crash(42, 0);
  EXPECT_EQ(full.deltas_taken, 0u);
  EXPECT_LT(delta.state_bytes, full.state_bytes)
      << "deltas shipped no fewer bytes than fulls";
}

TEST(StateChaosDeterminism, CrashMid2PCRunIsByteIdentical) {
  auto run_once = [](std::uint64_t seed) {
    Testbed bed{chaos_config(seed)};
    bed.launch(apps::scene_analysis_graph({}));
    auto& swarm = bed.swarm();
    const OperatorId fusion = find_op(swarm.graph(), "fusion");
    DeviceId from{}, to{};
    pick_pair(swarm, fusion, from, to);
    runtime::Scenario script{swarm};
    script.crash_during_migration_at(seconds(6.0), from, to,
                                     MigrationPhase::kAckReceived,
                                     MigrationVictim::kDestination);
    script.run_for(seconds(24.0));
    swarm.stop();
    bed.run(seconds(8.0));
    return std::pair{swarm.ledger().digest(),
                     swarm.registry().snapshot().dump()};
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run_once(43);
  EXPECT_NE(a.first, c.first) << "seed never reached the event stream";
}

TEST(StateChaosDelta, DeltaRunIsByteIdentical) {
  const DeltaRun a = run_delta_crash(42, 4);
  const DeltaRun b = run_delta_crash(42, 4);
  EXPECT_EQ(a.ledger_digest, b.ledger_digest);
  EXPECT_EQ(a.registry_snapshot, b.registry_snapshot);
}

}  // namespace
}  // namespace swing
