// swing-state end-to-end: crash recovery with restored operator state,
// planned live migration with zero tuple loss, and byte-determinism of
// checkpointed runs. Fixtures are named State* for CI's state-smoke job.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/scene_analysis.h"
#include "apps/testbed.h"
#include "core/tuple_ledger.h"
#include "runtime/scenario.h"

namespace swing {
namespace {

using apps::Testbed;
using apps::TestbedConfig;
using runtime::InstanceInfo;

OperatorId find_op(const dataflow::AppGraph& graph, const std::string& name) {
  for (const auto& op : graph.operators()) {
    if (op.name == name) return op.id;
  }
  return OperatorId{};
}

TestbedConfig state_config(std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  config.workers = {"G", "H", "I"};  // Strong-signal trio.
  config.swarm.with_recovery().with_checkpointing(seconds(0.5));
  return config;
}

struct StateRun {
  core::AuditReport report;
  std::uint64_t ledger_digest = 0;
  std::string registry_snapshot;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoints_restored = 0;
  std::vector<InstanceInfo> fusion_after;
  std::vector<InstanceInfo> fusion_before;
  DeviceId crashed;
};

// Scene analysis with an abrupt crash of a fusion-hosting worker at t=8s.
// The fusion join holds cross-branch halves, so without restored state the
// crash would strand every half routed to the dead instance.
StateRun run_crash_scenario(std::uint64_t seed) {
  Testbed bed{state_config(seed)};
  bed.launch(apps::scene_analysis_graph({}));
  auto& swarm = bed.swarm();
  const OperatorId fusion = find_op(swarm.graph(), "fusion");

  StateRun out;
  out.fusion_before = swarm.master()->instances_of(fusion);
  // Deterministic victim: the fusion instance with the lowest id hosted
  // off the master device.
  for (const auto& info : out.fusion_before) {
    if (info.device != swarm.master()->device()) {
      out.crashed = info.device;
      break;
    }
  }
  EXPECT_TRUE(out.crashed.valid()) << "no worker-hosted fusion instance";

  runtime::Scenario script{swarm};
  script.at(seconds(8.0), "crash",
            [dev = out.crashed](runtime::Swarm& s) { s.leave_abruptly(dev); });
  script.run_for(seconds(24.0));
  swarm.stop();
  bed.run(seconds(8.0));

  out.report = swarm.audit();
  out.ledger_digest = swarm.ledger().digest();
  out.registry_snapshot = swarm.registry().snapshot().dump();
  out.checkpoints_taken = swarm.metrics().checkpoints_taken();
  out.checkpoints_restored = swarm.metrics().checkpoints_restored();
  out.fusion_after = swarm.master()->instances_of(fusion);
  return out;
}

TEST(StateRecovery, CrashedJoinStateIsRestoredOnASurvivor) {
  const StateRun run = run_crash_scenario(42);
  EXPECT_TRUE(run.report.ok()) << run.report.summary();
  EXPECT_GT(run.report.delivered, 0u);
  EXPECT_GT(run.checkpoints_taken, 0u) << "checkpoint service never fired";
  EXPECT_GE(run.checkpoints_restored, 1u)
      << "crash never triggered a restore";

  // Every pre-crash fusion instance survives the crash — the victim's
  // instance is revived under the SAME id on a surviving device, so the
  // id-partitioned fan-in keeps its mapping.
  ASSERT_EQ(run.fusion_after.size(), run.fusion_before.size());
  for (const auto& before : run.fusion_before) {
    bool found = false;
    for (const auto& after : run.fusion_after) {
      if (after.instance == before.instance) {
        found = true;
        if (before.device == run.crashed) {
          EXPECT_NE(after.device, run.crashed)
              << "restored instance still booked on the dead device";
        }
      }
    }
    EXPECT_TRUE(found) << "instance " << before.instance
                       << " vanished instead of being restored";
  }
}

TEST(StateRecovery, StateLossIsBookedExactly) {
  // Conservation must hold with the crash in the ledger: anything consumed
  // by the join since its last shipped checkpoint is booked as state-lost,
  // never silently vanished. (The count may be zero when the crash lands
  // right after a checkpoint; the audit equation is the assertion.)
  const StateRun run = run_crash_scenario(7);
  EXPECT_TRUE(run.report.ok()) << run.report.summary();
  const auto it = run.report.drops_by_reason.find(core::DropReason::kStateLost);
  if (it != run.report.drops_by_reason.end()) {
    EXPECT_GT(it->second, 0u);
  }
}

TEST(StateDeterminism, CheckpointedCrashRunIsByteIdentical) {
  const StateRun a = run_crash_scenario(42);
  const StateRun b = run_crash_scenario(42);
  EXPECT_EQ(a.ledger_digest, b.ledger_digest);
  EXPECT_EQ(a.registry_snapshot, b.registry_snapshot);
  EXPECT_EQ(a.checkpoints_taken, b.checkpoints_taken);

  const StateRun c = run_crash_scenario(43);
  EXPECT_NE(a.ledger_digest, c.ledger_digest)
      << "seed never reached the checkpointed event stream";
}

TEST(StateMigration, PlannedHandoffLosesNothing) {
  Testbed bed{state_config(42)};
  bed.launch(apps::scene_analysis_graph({}));
  auto& swarm = bed.swarm();
  const OperatorId fusion = find_op(swarm.graph(), "fusion");

  // Scripted mobility handoff: at t=6s every stateful instance on the
  // first fusion-hosting worker moves to another worker.
  const auto before = swarm.master()->instances_of(fusion);
  DeviceId from{}, to{};
  for (const auto& info : before) {
    if (info.device == swarm.master()->device()) continue;
    if (!from.valid()) {
      from = info.device;
    } else if (info.device != from) {
      to = info.device;
      break;
    }
  }
  ASSERT_TRUE(from.valid());
  ASSERT_TRUE(to.valid());

  int started = 0;
  runtime::Scenario script{swarm};
  script.at(seconds(6.0), "migrate", [&](runtime::Swarm& s) {
    started = s.migrate_stateful(from, to);
  });
  script.run_for(seconds(18.0));
  swarm.stop();
  bed.run(seconds(8.0));

  EXPECT_GE(started, 1) << "no stateful instance was hosted on " << from;
  EXPECT_GE(swarm.metrics().migrations_completed(), std::uint64_t(started));

  // Zero tuple loss: the drained ledger balances exactly and nothing was
  // booked as state-lost (migration is the planned, lossless path).
  const core::AuditReport report = swarm.audit();
  EXPECT_TRUE(report.conserved()) << report.summary();
  EXPECT_EQ(report.drops_by_reason.count(core::DropReason::kStateLost), 0u)
      << report.summary();

  // The migrated instances kept their ids and moved off `from`.
  const auto after = swarm.master()->instances_of(fusion);
  ASSERT_EQ(after.size(), before.size());
  for (const auto& info : after) {
    EXPECT_NE(info.device, from)
        << "instance " << info.instance << " never left the source";
  }
}

TEST(StateMigration, RefusesNonsenseTargets) {
  Testbed bed{state_config(42)};
  bed.launch(apps::scene_analysis_graph({}));
  auto& swarm = bed.swarm();
  bed.run(seconds(3.0));

  auto* master = swarm.master();
  const OperatorId fusion = find_op(swarm.graph(), "fusion");
  const auto instances = master->instances_of(fusion);
  ASSERT_FALSE(instances.empty());
  const InstanceInfo victim = instances.front();

  // Unknown instance, unknown member, self-target, and master placement
  // for a workers-only operator are all refused without side effects.
  EXPECT_FALSE(master->migrate_instance(InstanceId{999999}, victim.device));
  EXPECT_FALSE(master->migrate_instance(victim.instance, DeviceId{999999}));
  EXPECT_FALSE(master->migrate_instance(victim.instance, victim.device));
  EXPECT_FALSE(
      master->migrate_instance(victim.instance, master->device()));
}

}  // namespace
}  // namespace swing
