// swing-state unit tests: wire codecs, the master's checkpoint store, and
// the snapshot -> restore -> snapshot byte-fixpoint property for the two
// stateful operators (fusion join, gesture windower). Fixtures are named
// State* so CI's state-smoke job selects them with `ctest -R '^State'`.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/gesture_recognition.h"
#include "apps/scene_analysis.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "dataflow/function_unit.h"
#include "dataflow/graph.h"
#include "dataflow/tuple.h"
#include "state/checkpoint_store.h"
#include "dataflow/codec.h"
#include "state/state_messages.h"

namespace swing {
namespace {

using dataflow::Tuple;
using runtime::InstanceInfo;
using state::CheckpointMsg;
using state::CheckpointStore;
using state::DeltaMsg;
using state::MigrateAbortMsg;
using state::MigrateAckMsg;
using state::MigrateCommitMsg;
using state::MigratePrepareMsg;
using state::MigrateStateMsg;
using state::ReplicaRestoreMsg;
using state::ReplicateMsg;
using state::RestoreMsg;

// --- Codec round-trips ------------------------------------------------------

CheckpointMsg sample_checkpoint() {
  CheckpointMsg msg;
  msg.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{1}};
  msg.epoch = 7;
  msg.taken_ns = 2'500'000'000;
  msg.state = Bytes{0xde, 0xad, 0xbe, 0xef};
  return msg;
}

TEST(StateContract, CheckpointRoundTripIsByteFixpoint) {
  CheckpointMsg msg = sample_checkpoint();
  const Bytes wire = dataflow::encode_to_bytes(msg);
  const CheckpointMsg back = dataflow::decode_from<CheckpointMsg>(wire);
  EXPECT_EQ(back, msg);
  EXPECT_EQ(dataflow::encode_to_bytes(back), wire);

  // Migration-final variant carries the handoff target.
  msg.migrate_to = DeviceId{3};
  const CheckpointMsg final_snap = dataflow::decode_from<CheckpointMsg>(dataflow::encode_to_bytes(msg));
  EXPECT_EQ(final_snap, msg);
  EXPECT_TRUE(final_snap.migrate_to.valid());
}

TEST(StateContract, RestoreRoundTripIsByteFixpoint) {
  RestoreMsg msg;
  msg.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{2}};
  msg.epoch = 7;
  msg.sent_ns = 2'600'000'000;
  msg.state = Bytes{1, 2, 3};
  msg.downstreams.push_back(
      InstanceInfo{InstanceId{6}, OperatorId{3}, DeviceId{0}});
  msg.downstreams.push_back(
      InstanceInfo{InstanceId{7}, OperatorId{3}, DeviceId{4}});
  const Bytes wire = dataflow::encode_to_bytes(msg);
  const RestoreMsg back = dataflow::decode_from<RestoreMsg>(wire);
  EXPECT_EQ(back, msg);
  EXPECT_EQ(dataflow::encode_to_bytes(back), wire);
}

// One helper asserts the byte-fixpoint property for every v2 message.
template <typename M>
void expect_roundtrip(const M& msg) {
  const Bytes wire = dataflow::encode_to_bytes(msg);
  const M back = dataflow::decode_from<M>(wire);
  EXPECT_EQ(back, msg);
  EXPECT_EQ(dataflow::encode_to_bytes(back), wire);
}

TEST(StateContract, DeltaRoundTripIsByteFixpoint) {
  DeltaMsg msg;
  msg.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{1}};
  msg.epoch = 9;
  msg.base_epoch = 7;
  msg.taken_ns = 2'700'000'000;
  msg.delta = Bytes{0x01, 0x02, 0x03};
  expect_roundtrip(msg);
}

TEST(StateContract, ReplicateRoundTripIsByteFixpoint) {
  ReplicateMsg msg;
  msg.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{1}};
  msg.kind = ReplicateMsg::Kind::kDelta;
  msg.epoch = 9;
  msg.base_epoch = 7;
  msg.sent_ns = 2'800'000'000;
  msg.state = Bytes{0xaa, 0xbb};
  expect_roundtrip(msg);
  msg.kind = ReplicateMsg::Kind::kFull;
  expect_roundtrip(msg);
}

TEST(StateContract, ReplicateRejectsUnknownKindByte) {
  ReplicateMsg msg;
  msg.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{1}};
  msg.kind = ReplicateMsg::Kind(7);  // Not a legal kind on the wire.
  EXPECT_THROW(
      dataflow::decode_from<ReplicateMsg>(dataflow::encode_to_bytes(msg)),
      WireFormatError);
}

TEST(StateContract, ReplicaRestoreRoundTripIsByteFixpoint) {
  ReplicaRestoreMsg msg;
  msg.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{1}};
  msg.sent_ns = 2'900'000'000;
  msg.downstreams.push_back(
      InstanceInfo{InstanceId{6}, OperatorId{3}, DeviceId{0}});
  expect_roundtrip(msg);
}

TEST(StateContract, MigratePrepareRoundTripIsByteFixpoint) {
  expect_roundtrip(MigratePrepareMsg{77, InstanceId{9}, DeviceId{4}});
}

TEST(StateContract, MigrateStateRoundTripIsByteFixpoint) {
  MigrateStateMsg msg;
  msg.txn = 77;
  msg.instance = InstanceInfo{InstanceId{9}, OperatorId{2}, DeviceId{4}};
  msg.epoch = 12;
  msg.sent_ns = 3'000'000'000;
  msg.state = Bytes{0x10, 0x20, 0x30, 0x40};
  expect_roundtrip(msg);
}

TEST(StateContract, MigrateAckRoundTripIsByteFixpoint) {
  expect_roundtrip(MigrateAckMsg{77, InstanceId{9}, true});
  expect_roundtrip(MigrateAckMsg{78, InstanceId{9}, false});
}

TEST(StateContract, MigrateCommitRoundTripIsByteFixpoint) {
  MigrateCommitMsg msg;
  msg.txn = 77;
  msg.instance = InstanceInfo{InstanceId{9}, OperatorId{2}, DeviceId{4}};
  msg.downstreams.push_back(
      InstanceInfo{InstanceId{6}, OperatorId{3}, DeviceId{0}});
  msg.downstreams.push_back(
      InstanceInfo{InstanceId{7}, OperatorId{3}, DeviceId{2}});
  expect_roundtrip(msg);
}

TEST(StateContract, MigrateAbortRoundTripIsByteFixpoint) {
  expect_roundtrip(MigrateAbortMsg{77, InstanceId{9}});
}

TEST(StateContract, TruncatedInputsThrowNotCrash) {
  const Bytes wire = dataflow::encode_to_bytes(sample_checkpoint());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const Bytes partial(wire.begin(), wire.begin() + std::ptrdiff_t(cut));
    EXPECT_THROW(dataflow::decode_from<CheckpointMsg>(partial), WireFormatError)
        << "cut at " << cut;
  }
  EXPECT_THROW(dataflow::decode_from<MigratePrepareMsg>(Bytes{1, 2, 3}),
               WireFormatError);
  EXPECT_THROW(dataflow::decode_from<DeltaMsg>(Bytes{1, 2, 3}),
               WireFormatError);
}

TEST(StateContract, HostileDownstreamCountIsRejectedRecoverably) {
  // A wire-claimed count far beyond the remaining bytes must throw
  // WireFormatError before any reserve (the DeployMsg crash shape).
  RestoreMsg msg;
  msg.instance = InstanceInfo{InstanceId{1}, OperatorId{1}, DeviceId{1}};
  Bytes wire = dataflow::encode_to_bytes(msg);
  wire.pop_back();  // Drop the honest count 0...
  for (int i = 0; i < 9; ++i) wire.push_back(0xff);
  wire.push_back(0x01);  // ...claim ~2^63 downstreams.
  EXPECT_THROW(dataflow::decode_from<RestoreMsg>(wire), WireFormatError);
}

// --- CheckpointStore epoch semantics ---------------------------------------

TEST(StateStore, KeepsLatestEpochPerInstance) {
  CheckpointStore store;
  CheckpointMsg msg = sample_checkpoint();
  EXPECT_TRUE(store.store(msg));
  ASSERT_NE(store.latest(msg.instance.instance), nullptr);
  EXPECT_EQ(store.latest(msg.instance.instance)->epoch, 7u);

  // Stale epochs (a periodic snapshot racing a newer one) are rejected.
  CheckpointMsg stale = msg;
  stale.epoch = 6;
  stale.state = Bytes{0x00};
  EXPECT_FALSE(store.store(stale));
  EXPECT_EQ(store.latest(msg.instance.instance)->state, msg.state);

  // Same epoch overwrites: a migration-final snapshot supersedes the
  // periodic one taken at the same epoch boundary.
  CheckpointMsg same = msg;
  same.state = Bytes{0x42};
  EXPECT_TRUE(store.store(same));
  EXPECT_EQ(store.latest(msg.instance.instance)->state, same.state);

  CheckpointMsg newer = msg;
  newer.epoch = 8;
  EXPECT_TRUE(store.store(newer));
  EXPECT_EQ(store.latest(msg.instance.instance)->epoch, 8u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(StateStore, TracksInstancesIndependentlyAndErases) {
  CheckpointStore store;
  CheckpointMsg a = sample_checkpoint();
  CheckpointMsg b = sample_checkpoint();
  b.instance.instance = InstanceId{6};
  b.epoch = 1;
  EXPECT_TRUE(store.store(a));
  EXPECT_TRUE(store.store(b));
  EXPECT_EQ(store.size(), 2u);
  store.erase(a.instance.instance);
  EXPECT_EQ(store.latest(a.instance.instance), nullptr);
  ASSERT_NE(store.latest(b.instance.instance), nullptr);
  EXPECT_EQ(store.latest(b.instance.instance)->epoch, 1u);
}

DeltaMsg delta_for(const CheckpointMsg& base, std::uint64_t epoch) {
  DeltaMsg d;
  d.instance = base.instance;
  d.epoch = epoch;
  d.base_epoch = base.epoch;
  d.taken_ns = base.taken_ns + std::int64_t(epoch) * 1'000'000;
  d.delta = Bytes{std::uint8_t(epoch)};
  return d;
}

TEST(StateStore, DeltaChainAcceptsOnlyContiguousEpochs) {
  CheckpointStore store;
  const CheckpointMsg base = sample_checkpoint();  // epoch 7.

  // No base yet: deltas have nothing to chain onto.
  EXPECT_FALSE(store.store_delta(delta_for(base, 8)));

  ASSERT_TRUE(store.store(base));
  EXPECT_TRUE(store.store_delta(delta_for(base, 8)));
  EXPECT_TRUE(store.store_delta(delta_for(base, 9)));

  // Gaps, replays, and wrong-base deltas are rejected; the chain is
  // untouched.
  EXPECT_FALSE(store.store_delta(delta_for(base, 11)));  // Gap (tip is 9).
  EXPECT_FALSE(store.store_delta(delta_for(base, 9)));   // Replay.
  DeltaMsg wrong_base = delta_for(base, 10);
  wrong_base.base_epoch = 6;
  EXPECT_FALSE(store.store_delta(wrong_base));

  const auto* chain = store.chain(base.instance.instance);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->base.epoch, 7u);
  EXPECT_EQ(chain->deltas.size(), 2u);
  EXPECT_EQ(chain->tip_epoch(), 9u);

  // A newer full resets the chain (epoch GC of the delta tail).
  CheckpointMsg newer = base;
  newer.epoch = 12;
  ASSERT_TRUE(store.store(newer));
  chain = store.chain(base.instance.instance);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->base.epoch, 12u);
  EXPECT_TRUE(chain->deltas.empty());
  EXPECT_EQ(chain->tip_epoch(), 12u);
}

TEST(StateStore, DeltaChainIsBoundedPerInstance) {
  CheckpointStore store;
  CheckpointMsg base = sample_checkpoint();
  base.epoch = 0;
  ASSERT_TRUE(store.store(base));
  for (std::uint64_t e = 1; e <= CheckpointStore::kMaxDeltasPerChain; ++e) {
    ASSERT_TRUE(store.store_delta(delta_for(base, e))) << e;
  }
  EXPECT_FALSE(store.store_delta(
      delta_for(base, CheckpointStore::kMaxDeltasPerChain + 1)))
      << "chains must stop growing at the cap until the next full";
}

// --- Snapshot fixpoint for the real stateful units -------------------------

// Minimal host context: collects emissions, fixed identity.
class FakeContext final : public dataflow::Context {
 public:
  void emit(Tuple tuple) override { emitted.push_back(std::move(tuple)); }
  SimTime now() const override { return SimTime{}; }
  DeviceId device() const override { return DeviceId{1}; }
  InstanceId instance() const override { return InstanceId{1}; }
  Rng& rng() override { return rng_; }

  std::vector<Tuple> emitted;

 private:
  Rng rng_{123};
};

std::unique_ptr<dataflow::FunctionUnit> make_unit(
    const dataflow::AppGraph& graph, const std::string& name) {
  for (const auto& op : graph.operators()) {
    if (op.name == name && op.factory) return op.factory();
  }
  return nullptr;
}

Bytes snapshot_of(const dataflow::FunctionUnit& unit) {
  ByteWriter w;
  unit.snapshot_state(w);
  return w.take();
}

TEST(StateFixpoint, FusionJoinSnapshotRestoreSnapshotIsByteIdentical) {
  const auto graph = apps::scene_analysis_graph({});
  auto unit = make_unit(graph, "fusion");
  ASSERT_NE(unit, nullptr);
  ASSERT_TRUE(unit->stateful());

  // Feed several first-halves so the join holds pending state.
  FakeContext ctx;
  for (std::uint64_t id = 10; id < 20; ++id) {
    Tuple half{TupleId{id}, SimTime{std::int64_t(id) * 1'000'000}};
    half.set("face_label", std::string{"alice"});
    unit->process(half, ctx);
  }
  EXPECT_TRUE(ctx.emitted.empty()) << "halves should be pending, not fused";

  const Bytes first = snapshot_of(*unit);
  EXPECT_FALSE(first.empty());

  // Restore into a fresh unit that already holds unrelated state: restore
  // replaces, never merges.
  auto other = make_unit(graph, "fusion");
  Tuple noise{TupleId{999}, SimTime{}};
  noise.set("object_label", std::string{"bicycle"});
  other->process(noise, ctx);
  ByteReader r{first};
  other->restore_state(r);
  EXPECT_EQ(snapshot_of(*other), first);

  // The restored join finishes pending frames exactly like the original:
  // a second half fuses against the restored first half.
  FakeContext fused;
  Tuple second{TupleId{10}, SimTime{10'000'000}};
  second.set("object_label", std::string{"laptop"});
  other->process(second, fused);
  ASSERT_EQ(fused.emitted.size(), 1u);
  const auto* scene = fused.emitted[0].get_as<std::string>("scene");
  ASSERT_NE(scene, nullptr);
  EXPECT_EQ(*scene, "alice with a laptop");
}

TEST(StateFixpoint, WindowerSnapshotRestoreSnapshotIsByteIdentical) {
  apps::GestureConfig config;
  const auto graph = apps::gesture_recognition_graph(config);
  auto unit = make_unit(graph, "windower");
  ASSERT_NE(unit, nullptr);
  ASSERT_TRUE(unit->stateful());

  // Partially fill the window (and roll one full window to advance the
  // counter) so both counter and buffer are non-trivial.
  FakeContext ctx;
  const std::uint64_t samples = config.window_samples + 7;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const apps::AccelSample s =
        apps::synth_sample(i, config.window_samples);
    ByteWriter w;
    w.write_f64(s.x);
    w.write_f64(s.y);
    w.write_f64(s.z);
    Tuple t{TupleId{i}, SimTime{std::int64_t(i) * 1'000'000}};
    t.set("accel", w.take());
    unit->process(t, ctx);
  }
  EXPECT_EQ(ctx.emitted.size(), 1u);

  const Bytes first = snapshot_of(*unit);
  auto other = make_unit(graph, "windower");
  ByteReader r{first};
  other->restore_state(r);
  EXPECT_EQ(snapshot_of(*other), first)
      << "float->f64->float sample round-trip must be exact";

  // Stateless units keep the default no-op contract.
  auto classifier = make_unit(graph, "classifier");
  ASSERT_NE(classifier, nullptr);
  EXPECT_FALSE(classifier->stateful());
  EXPECT_TRUE(snapshot_of(*classifier).empty());
}

// --- Delta-chain property: full + N deltas == N+1 fulls ---------------------

Bytes delta_of(dataflow::FunctionUnit& unit) {
  ByteWriter w;
  unit.snapshot_delta(w);
  return w.take();
}

void apply_delta_bytes(dataflow::FunctionUnit& unit, const Bytes& delta) {
  ByteReader r{delta};
  unit.apply_delta(r);
}

TEST(StateFixpoint, FusionDeltaChainConvergesToFullSnapshot) {
  const auto graph = apps::scene_analysis_graph({});
  auto live = make_unit(graph, "fusion");
  ASSERT_NE(live, nullptr);
  EXPECT_FALSE(live->delta_ready()) << "journal must be unarmed before the "
                                       "first full snapshot";

  FakeContext ctx;
  const auto first_half = [&](std::uint64_t id) {
    Tuple t{TupleId{id}, SimTime{std::int64_t(id) * 1'000'000}};
    t.set("face_label", std::string{"alice"});
    live->process(t, ctx);
  };
  const auto second_half = [&](std::uint64_t id) {
    Tuple t{TupleId{id}, SimTime{std::int64_t(id) * 1'000'000 + 1}};
    t.set("object_label", std::string{"laptop"});
    live->process(t, ctx);
  };

  for (std::uint64_t id = 10; id < 20; ++id) first_half(id);
  const Bytes base = snapshot_of(*live);  // Arms the journal.
  auto replica = make_unit(graph, "fusion");
  ByteReader r{base};
  replica->restore_state(r);

  // Round 1: inserts only.
  for (std::uint64_t id = 20; id < 25; ++id) first_half(id);
  ASSERT_TRUE(live->delta_ready());
  apply_delta_bytes(*replica, delta_of(*live));
  EXPECT_EQ(snapshot_of(*replica), snapshot_of(*live));

  // Round 2: a fuse (journalled erase) plus more inserts. After applying
  // both deltas in order the replica is byte-identical to the live unit —
  // the same end state N+1 fulls would have produced.
  second_half(12);
  second_half(21);
  for (std::uint64_t id = 25; id < 28; ++id) first_half(id);
  ASSERT_TRUE(live->delta_ready());
  apply_delta_bytes(*replica, delta_of(*live));
  EXPECT_EQ(snapshot_of(*replica), snapshot_of(*live));

  // snapshot_delta drained the journal: nothing new to ship.
  ASSERT_TRUE(live->delta_ready());
  EXPECT_EQ(snapshot_of(*replica), snapshot_of(*live));
}

TEST(StateFixpoint, WindowerDeltaChainRollsExactlyLikeLive) {
  apps::GestureConfig config;
  const auto graph = apps::gesture_recognition_graph(config);
  auto live = make_unit(graph, "windower");
  ASSERT_NE(live, nullptr);

  FakeContext ctx;
  std::uint64_t next = 0;
  const auto feed = [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i, ++next) {
      const apps::AccelSample s = apps::synth_sample(next, config.window_samples);
      ByteWriter w;
      w.write_f64(s.x);
      w.write_f64(s.y);
      w.write_f64(s.z);
      Tuple t{TupleId{next}, SimTime{std::int64_t(next) * 1'000'000}};
      t.set("accel", w.take());
      live->process(t, ctx);
    }
  };

  feed(7);
  const Bytes base = snapshot_of(*live);  // Arms the journal.
  auto replica = make_unit(graph, "windower");
  ByteReader r{base};
  replica->restore_state(r);

  // Cross a window boundary inside one delta: the replica must roll its
  // window (advance the index, clear the buffer) exactly like the live
  // unit's emit path did.
  feed(config.window_samples);
  ASSERT_TRUE(live->delta_ready());
  apply_delta_bytes(*replica, delta_of(*live));
  EXPECT_EQ(snapshot_of(*replica), snapshot_of(*live));

  // And a second, non-rolling delta chains on cleanly.
  feed(3);
  ASSERT_TRUE(live->delta_ready());
  apply_delta_bytes(*replica, delta_of(*live));
  EXPECT_EQ(snapshot_of(*replica), snapshot_of(*live));
}

TEST(StateFixpoint, FusionJournalOverflowForcesNextFull) {
  const auto graph = apps::scene_analysis_graph({});
  auto live = make_unit(graph, "fusion");
  ASSERT_NE(live, nullptr);
  FakeContext ctx;
  snapshot_of(*live);  // Arm.
  // Blow past the journal cap: the unit must degrade to "ship a full next"
  // rather than emit an unbounded delta.
  for (std::uint64_t id = 0; id < 600; ++id) {
    Tuple t{TupleId{id}, SimTime{std::int64_t(id)}};
    t.set("face_label", std::string{"alice"});
    live->process(t, ctx);
  }
  EXPECT_FALSE(live->delta_ready());
  // A fresh full snapshot re-arms journaling.
  snapshot_of(*live);
  Tuple t{TupleId{9000}, SimTime{}};
  t.set("face_label", std::string{"alice"});
  live->process(t, ctx);
  EXPECT_TRUE(live->delta_ready());
}

}  // namespace
}  // namespace swing
