// The metrics registry: identity semantics, label normalisation, lookup,
// and deterministic snapshots.
#include "obs/registry.h"

#include <gtest/gtest.h>

namespace swing::obs {
namespace {

TEST(Registry, SameKeyReturnsSameInstrument) {
  Registry r;
  Counter& a = r.counter("tuples", {{"policy", "LRS"}});
  Counter& b = r.counter("tuples", {{"policy", "LRS"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Registry, LabelOrderIsNormalised) {
  Registry r;
  Counter& a = r.counter("x", {{"b", "2"}, {"a", "1"}});
  Counter& b = r.counter("x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Registry, DistinctLabelsAreDistinctInstruments) {
  Registry r;
  Counter& lrs = r.counter("routed", {{"policy", "LRS"}});
  Counter& rr = r.counter("routed", {{"policy", "RR"}});
  EXPECT_NE(&lrs, &rr);
  lrs.inc(5);
  rr.inc(2);
  EXPECT_EQ(r.counter_total("routed"), 7u);
}

TEST(Registry, InstrumentAddressesSurviveLaterRegistrations) {
  Registry r;
  Counter& first = r.counter("stable");
  for (int i = 0; i < 100; ++i) {
    r.counter("filler", {{"i", std::to_string(i)}});
  }
  first.inc();
  EXPECT_EQ(r.find_counter("stable")->value(), 1u);
}

TEST(Registry, GaugeSetAndAdd) {
  Registry r;
  Gauge& g = r.gauge("airtime");
  g.set(1.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(r.find_gauge("airtime")->value(), 2.0);
}

TEST(Registry, HistogramRecordsAndQuantiles) {
  Registry r;
  Histogram& h = r.histogram("latency_ms");
  for (int i = 1; i <= 100; ++i) h.record(double(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
  EXPECT_NEAR(h.p50(), 50.0, 50.0 * 0.04);
  EXPECT_NEAR(h.p95(), 95.0, 95.0 * 0.04);
  EXPECT_NEAR(h.p99(), 99.0, 99.0 * 0.04);
}

TEST(Registry, FindReturnsNullForMissingOrWrongKind) {
  Registry r;
  r.counter("c");
  r.gauge("g");
  EXPECT_EQ(r.find_counter("absent"), nullptr);
  EXPECT_EQ(r.find_gauge("c"), nullptr);
  EXPECT_EQ(r.find_histogram("g"), nullptr);
  EXPECT_NE(r.find_counter("c"), nullptr);
}

TEST(Registry, CounterTotalSumsAcrossLabelSets) {
  Registry r;
  r.counter("drops", {{"reason", "stale-ttl"}}).inc(4);
  r.counter("drops", {{"reason", "send-failed"}}).inc(6);
  r.counter("unrelated").inc(100);
  EXPECT_EQ(r.counter_total("drops"), 10u);
  EXPECT_EQ(r.counter_total("absent"), 0u);
}

TEST(Registry, EncodeKey) {
  EXPECT_EQ(Registry::encode_key("plain", {}), "plain");
  EXPECT_EQ(Registry::encode_key("x", {{"b", "2"}, {"a", "1"}}),
            "x{a=1,b=2}");
}

TEST(Registry, SnapshotIsSortedAndComplete) {
  Registry r;
  r.counter("z_last").inc(1);
  r.gauge("a_first").set(0.5);
  r.histogram("m_mid").record(10.0);

  const Json snap = r.snapshot();
  ASSERT_TRUE(snap.is_object());
  const auto& obj = snap.as_object();
  ASSERT_EQ(obj.size(), 3u);
  // Sorted by encoded key regardless of registration order.
  EXPECT_EQ(obj[0].first, "a_first");
  EXPECT_EQ(obj[1].first, "m_mid");
  EXPECT_EQ(obj[2].first, "z_last");
  EXPECT_TRUE(obj[1].second.contains("p95"));
  EXPECT_EQ(obj[2].second.as_int(), 1);
}

TEST(Registry, SnapshotIsByteStableAcrossIdenticalSequences) {
  auto build = [] {
    Registry r;
    r.counter("tuples_dropped", {{"reason", "stale-ttl"}}).inc(3);
    r.gauge("net_busy_airtime_s").set(1.25);
    auto& h = r.histogram("e2e_latency_ms");
    h.record(12.0);
    h.record(120.0);
    return r.snapshot().dump(1);
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace swing::obs
