// Hop-level tracing: sampling, the event cap, and Chrome trace-event JSON
// structural validity (the contract Perfetto / chrome://tracing relies on).
#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <set>

namespace swing::obs {
namespace {

TraceConfig enabled_config(std::uint64_t sample_every = 1) {
  TraceConfig c;
  c.enabled = true;
  c.sample_every = sample_every;
  return c;
}

TEST(Tracer, DisabledByDefaultSamplesNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.sampled(TupleId{4}));
}

TEST(Tracer, SamplingStride) {
  Tracer t{enabled_config(4)};
  EXPECT_TRUE(t.sampled(TupleId{4}));
  EXPECT_TRUE(t.sampled(TupleId{8}));
  EXPECT_FALSE(t.sampled(TupleId{5}));
  EXPECT_FALSE(t.sampled(TupleId{})); // Invalid ids are never sampled.
}

TEST(Tracer, ZeroStrideIsCoercedToOne) {
  Tracer t{enabled_config(0)};
  EXPECT_TRUE(t.sampled(TupleId{1}));
  EXPECT_TRUE(t.sampled(TupleId{2}));
}

TEST(Tracer, EventCapCountsDrops) {
  TraceConfig c = enabled_config();
  c.max_events = 3;
  Tracer t{c};
  for (std::uint64_t i = 1; i <= 5; ++i) {
    t.instant(TracePhase::kEmit, TupleId{i}, DeviceId{0}, SimTime{});
  }
  EXPECT_EQ(t.events(), 3u);
  EXPECT_EQ(t.dropped_events(), 2u);
}

TEST(Tracer, PhaseNames) {
  EXPECT_STREQ(trace_phase_name(TracePhase::kEmit), "emit");
  EXPECT_STREQ(trace_phase_name(TracePhase::kDisplay), "display");
}

TEST(Tracer, ChromeTraceStructure) {
  Tracer t{enabled_config()};
  const SimTime start = SimTime{} + millis(5);
  t.instant(TracePhase::kEmit, TupleId{1}, DeviceId{0}, SimTime{});
  t.span(TracePhase::kTx, TupleId{1}, DeviceId{2}, start, millis(3));
  t.span(TracePhase::kProcess, TupleId{1}, DeviceId{2}, start + millis(3),
         millis(40));
  t.instant(TracePhase::kDisplay, TupleId{1}, DeviceId{0},
            start + millis(50));

  const Json trace = t.chrome_trace();
  const Json* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t metadata = 0, spans = 0, instants = 0;
  for (const Json& e : events->as_array()) {
    ASSERT_TRUE(e.is_object());
    ASSERT_TRUE(e.contains("ph"));
    ASSERT_TRUE(e.contains("pid"));
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      EXPECT_TRUE(e.contains("name"));
      continue;
    }
    ASSERT_TRUE(e.contains("name"));
    ASSERT_TRUE(e.contains("ts"));
    ASSERT_TRUE(e.contains("tid"));
    if (ph == "X") {
      ++spans;
      EXPECT_TRUE(e.contains("dur"));
    } else {
      EXPECT_EQ(ph, "i");
      ++instants;
    }
  }
  // Two devices seen -> at least one thread-name metadata record each.
  EXPECT_GE(metadata, 2u);
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 2u);
}

TEST(Tracer, TimestampsAreMicrosecondsOnSimClock) {
  Tracer t{enabled_config()};
  t.span(TracePhase::kProcess, TupleId{1}, DeviceId{0}, SimTime{} + millis(2),
         millis(1));
  const Json trace = t.chrome_trace();
  for (const Json& e : trace.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() != "X") continue;
    EXPECT_DOUBLE_EQ(e.find("ts")->as_double(), 2000.0);   // 2 ms = 2000 us.
    EXPECT_DOUBLE_EQ(e.find("dur")->as_double(), 1000.0);  // 1 ms = 1000 us.
  }
}

TEST(Tracer, ExportParsesAndIsDeterministic) {
  auto build = [] {
    Tracer t{enabled_config(2)};
    for (std::uint64_t id = 1; id <= 10; ++id) {
      if (!t.sampled(TupleId{id})) continue;
      t.instant(TracePhase::kEmit, TupleId{id}, DeviceId{0},
                SimTime{} + millis(double(id)));
      t.span(TracePhase::kTx, TupleId{id}, DeviceId{1},
             SimTime{} + millis(double(id)), millis(2));
    }
    return t.chrome_trace_json();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());
  EXPECT_TRUE(Json::parse(a).has_value());
}

}  // namespace
}  // namespace swing::obs
