// The deterministic JSON document model: build, dump, parse round-trips.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <limits>

namespace swing::obs {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json{true}.dump(), "true");
  EXPECT_EQ(Json{false}.dump(), "false");
  EXPECT_EQ(Json{42}.dump(), "42");
  EXPECT_EQ(Json{std::int64_t{-7}}.dump(), "-7");
  EXPECT_EQ(Json{std::uint64_t{18446744073709551615ull}}.dump(),
            "18446744073709551615");
  EXPECT_EQ(Json{"hi"}.dump(), "\"hi\"");
}

TEST(Json, DoublesUseShortestRoundTrip) {
  EXPECT_EQ(Json{0.5}.dump(), "0.5");
  EXPECT_EQ(Json{1.0}.dump(), "1");
  EXPECT_EQ(Json{2432.4990359591834}.dump(), "2432.4990359591834");
}

TEST(Json, NonFiniteDoublesRenderAsNull) {
  EXPECT_EQ(Json{std::numeric_limits<double>::quiet_NaN()}.dump(), "null");
  EXPECT_EQ(Json{std::numeric_limits<double>::infinity()}.dump(), "null");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["apple"] = 2;
  j["mango"] = 3;
  EXPECT_EQ(j.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(Json, ObjectSetReplacesInPlace) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = 2;
  j["a"] = 9;
  EXPECT_EQ(j.dump(), "{\"a\":9,\"b\":2}");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, StringEscaping) {
  Json j = Json{std::string{"quote\" backslash\\ newline\n tab\t"}};
  EXPECT_EQ(j.dump(), "\"quote\\\" backslash\\\\ newline\\n tab\\t\"");
}

TEST(Json, ArrayPushBack) {
  Json j = Json::array();
  j.push_back(1);
  j.push_back("two");
  j.push_back(Json::object());
  EXPECT_EQ(j.dump(), "[1,\"two\",{}]");
  EXPECT_EQ(j.size(), 3u);
}

TEST(Json, FindAndContains) {
  Json j = Json::object();
  j["present"] = 5;
  EXPECT_TRUE(j.contains("present"));
  EXPECT_FALSE(j.contains("absent"));
  ASSERT_NE(j.find("present"), nullptr);
  EXPECT_EQ(j.find("present")->as_int(), 5);
  EXPECT_EQ(j.find("absent"), nullptr);
  EXPECT_EQ(Json{3}.find("anything"), nullptr);
}

TEST(Json, PrettyPrintIsStable) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = Json::array();
  j["b"].push_back(2);
  EXPECT_EQ(j.dump(1), "{\n \"a\": 1,\n \"b\": [\n  2\n ]\n}");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      "{\"name\":\"x\",\"n\":3,\"f\":0.25,\"ok\":true,\"none\":null,"
      "\"xs\":[1,2,3]}";
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), text);
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
}

TEST(Json, ParseNestedStructure) {
  const auto parsed =
      Json::parse("{\"traceEvents\":[{\"ph\":\"X\",\"ts\":1.5}]}");
  ASSERT_TRUE(parsed.has_value());
  const Json* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ(events->as_array()[0].find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(events->as_array()[0].find("ts")->as_double(), 1.5);
}

}  // namespace
}  // namespace swing::obs
