// End-to-end observability: a real swarm run populates the registry and the
// tracer, same-seed runs produce byte-identical artifacts, and the exported
// Chrome trace is structurally valid.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "apps/face_recognition.h"
#include "apps/testbed.h"
#include "core/tuple_ledger.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace swing {
namespace {

apps::TestbedConfig small_config(bool traced) {
  apps::TestbedConfig config;
  config.workers = {"G", "H"};
  config.weak_signal_bcd = false;
  config.swarm.trace.enabled = traced;
  return config;
}

TEST(ObsIntegration, RunPopulatesRegistry) {
  apps::Testbed bed{small_config(false)};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));

  const obs::Registry& registry = bed.swarm().registry();
  // Delivered tuples flow through the metrics plane...
  EXPECT_GT(registry.counter_total("frames_delivered"), 0u);
  EXPECT_GT(registry.counter_total("manager_routed_tuples"), 0u);
  EXPECT_GT(registry.counter_total("net_messages_delivered"), 0u);
  EXPECT_GT(registry.counter_total("master_events"), 0u);
  // ...and latency histograms fill alongside.
  const obs::Histogram* latency = registry.find_histogram("e2e_latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->count(), 0u);
  EXPECT_GT(latency->p95(), 0.0);
}

TEST(ObsIntegration, MetricsPlaneAgreesWithCollector) {
  apps::Testbed bed{small_config(false)};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));

  const auto& metrics = bed.swarm().metrics();
  EXPECT_EQ(bed.swarm().registry().counter_total("frames_delivered"),
            metrics.frames_arrived());
  EXPECT_EQ(bed.swarm().registry().counter_total("tuples_dropped"),
            metrics.total_drops());
}

TEST(ObsIntegration, SameSeedSnapshotsAreByteIdentical) {
  auto snapshot = [] {
    apps::Testbed bed{small_config(false)};
    bed.launch(apps::face_recognition_graph());
    bed.run(seconds(8));
    return bed.swarm().registry().snapshot().dump(1);
  };
  const std::string a = snapshot();
  const std::string b = snapshot();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(ObsIntegration, TraceCapturesTupleLifecycle) {
  apps::Testbed bed{small_config(true)};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(8));

  const obs::Tracer& tracer = bed.swarm().tracer();
  ASSERT_GT(tracer.events(), 0u);

  const obs::Json trace = tracer.chrome_trace();
  const obs::Json* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> phases;
  std::set<std::int64_t> tracks;
  for (const obs::Json& e : events->as_array()) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "M") continue;
    phases.insert(e.find("name")->as_string());
    tracks.insert(e.find("tid")->as_int());
    ASSERT_TRUE(ph == "X" || ph == "i") << "unexpected phase " << ph;
    EXPECT_GE(e.find("ts")->as_double(), 0.0);
    if (ph == "X") {
      EXPECT_GE(e.find("dur")->as_double(), 0.0);
    }
  }
  // The full lifecycle shows up: emit at the source, transmission and
  // processing on workers, then playback at the sink.
  for (const char* phase :
       {"emit", "route", "tx", "queue", "process", "ack", "display"}) {
    EXPECT_TRUE(phases.contains(phase)) << "missing phase " << phase;
  }
  // More than one device track: source/sink device plus workers.
  EXPECT_GE(tracks.size(), 2u);
}

TEST(ObsIntegration, SameSeedTracesAreByteIdentical) {
  auto trace = [] {
    apps::Testbed bed{small_config(true)};
    bed.launch(apps::face_recognition_graph());
    bed.run(seconds(5));
    return bed.swarm().tracer().chrome_trace_json();
  };
  const std::string a = trace();
  EXPECT_EQ(a, trace());
  EXPECT_TRUE(obs::Json::parse(a).has_value());
}

TEST(ObsIntegration, SamplingReducesEventVolume) {
  apps::TestbedConfig sparse = small_config(true);
  sparse.swarm.trace.sample_every = 8;
  apps::Testbed full_bed{small_config(true)};
  apps::Testbed sparse_bed{sparse};
  full_bed.launch(apps::face_recognition_graph());
  sparse_bed.launch(apps::face_recognition_graph());
  full_bed.run(seconds(5));
  sparse_bed.run(seconds(5));

  ASSERT_GT(sparse_bed.swarm().tracer().events(), 0u);
  EXPECT_LT(sparse_bed.swarm().tracer().events(),
            full_bed.swarm().tracer().events() / 2);
}

TEST(ObsIntegration, TracingDoesNotPerturbTheRun) {
  auto snapshot = [](bool traced) {
    apps::Testbed bed{small_config(traced)};
    bed.launch(apps::face_recognition_graph());
    bed.run(seconds(8));
    return bed.swarm().registry().snapshot().dump(1);
  };
  // The tracer is a pure observer: metrics are identical with it on or off.
  EXPECT_EQ(snapshot(false), snapshot(true));
}

}  // namespace
}  // namespace swing
