// The BENCH_<name>.json report writer: schema shape, stats expansion,
// determinism, and file output.
#include "obs/bench_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace swing::obs {
namespace {

TEST(BenchReport, TopLevelSchema) {
  BenchReport report{"unit_test_bench", 7};
  report.set_config("duration_s", 5.0);
  Json& row = report.add_result();
  row["metric"] = 1.5;
  report.set_summary("speedup", 2.0);

  const auto parsed = Json::parse(report.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("bench")->as_string(), "unit_test_bench");
  EXPECT_TRUE(parsed->find("git")->is_string());
  EXPECT_EQ(parsed->find("seed")->as_int(), 7);
  EXPECT_DOUBLE_EQ(parsed->find("config")->find("duration_s")->as_double(),
                   5.0);
  ASSERT_TRUE(parsed->find("results")->is_array());
  EXPECT_EQ(parsed->find("results")->size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->find("summary")->find("speedup")->as_double(),
                   2.0);
}

TEST(BenchReport, GitDescribeIsBakedIn) {
  EXPECT_STRNE(build_git_describe(), "");
}

TEST(BenchReport, AddStatsExpandsPercentileBlock) {
  SampleStats stats;
  for (int i = 1; i <= 200; ++i) stats.add(double(i));
  Json row = Json::object();
  BenchReport::add_stats(row, "latency_ms", stats);

  EXPECT_EQ(row.find("latency_ms_count")->as_int(), 200);
  EXPECT_DOUBLE_EQ(row.find("latency_ms_min")->as_double(), 1.0);
  EXPECT_NEAR(row.find("latency_ms_mean")->as_double(), 100.5, 1e-9);
  EXPECT_NEAR(row.find("latency_ms_p50")->as_double(), 100.0, 2.0);
  EXPECT_NEAR(row.find("latency_ms_p95")->as_double(), 190.0, 2.0);
  EXPECT_NEAR(row.find("latency_ms_p99")->as_double(), 198.0, 3.0);
  EXPECT_DOUBLE_EQ(row.find("latency_ms_max")->as_double(), 200.0);
  EXPECT_TRUE(row.contains("latency_ms_stddev"));
}

TEST(BenchReport, IdenticalInputsProduceIdenticalBytes) {
  auto build = [] {
    BenchReport report{"determinism", 42};
    report.set_config("duration_s", 1.0);
    Json& row = report.add_result();
    row["throughput_fps"] = 23.75;
    row["policy"] = "LRS";
    report.set_summary("total", std::uint64_t{95});
    return report.to_json();
  };
  EXPECT_EQ(build(), build());
}

TEST(BenchReport, WriteProducesParseableFileWithTrailingNewline) {
  BenchReport report{"file_io", 1};
  report.add_result()["x"] = 1;
  const std::string path = testing::TempDir() + "swing_bench_report_test.json";
  ASSERT_TRUE(report.write(path));

  std::ifstream in{path};
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_TRUE(Json::parse(text).has_value());
  std::remove(path.c_str());
}

TEST(BenchReport, WriteFailsOnBadPath) {
  BenchReport report{"bad_path", 1};
  EXPECT_FALSE(report.write("/nonexistent_dir_xyz/report.json"));
}

}  // namespace
}  // namespace swing::obs
