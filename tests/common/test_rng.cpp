#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace swing {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SeedSensitivity) {
  SplitMix64 a{1}, b{2};
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng{5};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Each bucket should get roughly 1000 draws.
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(Rng, ExponentialMean) {
  Rng rng{13};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.5);
}

TEST(Rng, ExponentialPositive) {
  Rng rng{17};
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng{19};
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, LognormalMeanCv) {
  Rng rng{23};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_mean_cv(100.0, 0.1);
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, LognormalZeroCvIsExact) {
  Rng rng{29};
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(42.0, 0.0), 42.0);
}

TEST(Rng, LognormalAlwaysPositive) {
  Rng rng{31};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal_mean_cv(1.0, 2.0), 0.0);
  }
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng{37};
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_NEAR(double(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(double(counts[1]) / n, 0.3, 0.015);
  EXPECT_NEAR(double(counts[2]) / n, 0.6, 0.015);
}

TEST(Rng, WeightedPickSingleElement) {
  Rng rng{41};
  const std::vector<double> weights = {5.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_pick(weights), 0u);
}

TEST(Rng, WeightedPickZeroWeightNeverChosen) {
  Rng rng{43};
  const std::vector<double> weights = {0.0, 1.0};
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(rng.weighted_pick(weights), 1u);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent{47};
  Rng child = parent.fork();
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() != child.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a{53}, b{53};
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, UsableWithStdDistributions) {
  // Rng satisfies UniformRandomBitGenerator.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng{59};
  EXPECT_GE(rng(), Rng::min());
}

}  // namespace
}  // namespace swing
