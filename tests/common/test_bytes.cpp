#include "common/bytes.h"

#include <gtest/gtest.h>

#include <limits>

namespace swing {
namespace {

TEST(ByteWriter, EmptyBuffer) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.data().empty());
}

TEST(ByteRoundTrip, U8) {
  ByteWriter w;
  w.write_u8(0);
  w.write_u8(255);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u8(), 0);
  EXPECT_EQ(r.read_u8(), 255);
  EXPECT_TRUE(r.done());
}

TEST(ByteRoundTrip, U32) {
  ByteWriter w;
  w.write_u32(0xdeadbeef);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
}

TEST(ByteRoundTrip, U64) {
  ByteWriter w;
  w.write_u64(0x0123456789abcdefULL);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
}

TEST(ByteRoundTrip, I64Negative) {
  ByteWriter w;
  w.write_i64(-42);
  w.write_i64(std::numeric_limits<std::int64_t>::min());
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_i64(), std::numeric_limits<std::int64_t>::min());
}

TEST(ByteRoundTrip, F64) {
  ByteWriter w;
  w.write_f64(3.14159);
  w.write_f64(-0.0);
  w.write_f64(std::numeric_limits<double>::infinity());
  ByteReader r{w.data()};
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_DOUBLE_EQ(r.read_f64(), -0.0);
  EXPECT_EQ(r.read_f64(), std::numeric_limits<double>::infinity());
}

TEST(ByteRoundTrip, VarintSmall) {
  ByteWriter w;
  w.write_varint(0);
  w.write_varint(127);
  EXPECT_EQ(w.size(), 2u);  // One byte each.
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_varint(), 0u);
  EXPECT_EQ(r.read_varint(), 127u);
}

TEST(ByteRoundTrip, VarintBoundaries) {
  ByteWriter w;
  w.write_varint(128);
  w.write_varint(16383);
  w.write_varint(16384);
  w.write_varint(~std::uint64_t{0});
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_varint(), 128u);
  EXPECT_EQ(r.read_varint(), 16383u);
  EXPECT_EQ(r.read_varint(), 16384u);
  EXPECT_EQ(r.read_varint(), ~std::uint64_t{0});
}

TEST(ByteRoundTrip, String) {
  ByteWriter w;
  w.write_string("hello swing");
  w.write_string("");
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_string(), "hello swing");
  EXPECT_EQ(r.read_string(), "");
}

TEST(ByteRoundTrip, BytesBlob) {
  Bytes payload = {1, 2, 3, 250, 251};
  ByteWriter w;
  w.write_bytes(payload);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_bytes(), payload);
}

TEST(ByteRoundTrip, MixedSequence) {
  ByteWriter w;
  w.write_u8(9);
  w.write_string("k");
  w.write_varint(300);
  w.write_f64(2.5);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u8(), 9);
  EXPECT_EQ(r.read_string(), "k");
  EXPECT_EQ(r.read_varint(), 300u);
  EXPECT_DOUBLE_EQ(r.read_f64(), 2.5);
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, UnderrunThrows) {
  ByteWriter w;
  w.write_u8(1);
  ByteReader r{w.data()};
  r.read_u8();
  EXPECT_THROW(r.read_u8(), WireFormatError);
  EXPECT_THROW(r.read_u64(), WireFormatError);
}

TEST(ByteReader, TruncatedStringThrows) {
  ByteWriter w;
  w.write_varint(100);  // Claims 100 bytes follow; none do.
  ByteReader r{w.data()};
  EXPECT_THROW(r.read_string(), WireFormatError);
}

TEST(ByteReader, MalformedVarintThrows) {
  // Eleven continuation bytes: > 64 bits of shift.
  Bytes data(11, 0x80);
  ByteReader r{data};
  EXPECT_THROW(r.read_varint(), WireFormatError);
}

TEST(ByteReader, Remaining) {
  ByteWriter w;
  w.write_u32(1);
  ByteReader r{w.data()};
  EXPECT_EQ(r.remaining(), 4u);
  r.read_u8();
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(ByteWriter, TakeMovesBuffer) {
  ByteWriter w;
  w.write_u8(7);
  Bytes b = w.take();
  EXPECT_EQ(b.size(), 1u);
}

}  // namespace
}  // namespace swing
