#include "common/bytes.h"

#include <gtest/gtest.h>

#include <limits>

namespace swing {
namespace {

TEST(ByteWriter, EmptyBuffer) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.data().empty());
}

TEST(ByteRoundTrip, U8) {
  ByteWriter w;
  w.write_u8(0);
  w.write_u8(255);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u8(), 0);
  EXPECT_EQ(r.read_u8(), 255);
  EXPECT_TRUE(r.done());
}

TEST(ByteRoundTrip, U32) {
  ByteWriter w;
  w.write_u32(0xdeadbeef);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
}

TEST(ByteRoundTrip, U64) {
  ByteWriter w;
  w.write_u64(0x0123456789abcdefULL);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
}

TEST(ByteRoundTrip, I64Negative) {
  ByteWriter w;
  w.write_i64(-42);
  w.write_i64(std::numeric_limits<std::int64_t>::min());
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_i64(), std::numeric_limits<std::int64_t>::min());
}

TEST(ByteRoundTrip, F64) {
  ByteWriter w;
  w.write_f64(3.14159);
  w.write_f64(-0.0);
  w.write_f64(std::numeric_limits<double>::infinity());
  ByteReader r{w.data()};
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_DOUBLE_EQ(r.read_f64(), -0.0);
  EXPECT_EQ(r.read_f64(), std::numeric_limits<double>::infinity());
}

TEST(ByteRoundTrip, VarintSmall) {
  ByteWriter w;
  w.write_varint(0);
  w.write_varint(127);
  EXPECT_EQ(w.size(), 2u);  // One byte each.
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_varint(), 0u);
  EXPECT_EQ(r.read_varint(), 127u);
}

TEST(ByteRoundTrip, VarintBoundaries) {
  ByteWriter w;
  w.write_varint(128);
  w.write_varint(16383);
  w.write_varint(16384);
  w.write_varint(~std::uint64_t{0});
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_varint(), 128u);
  EXPECT_EQ(r.read_varint(), 16383u);
  EXPECT_EQ(r.read_varint(), 16384u);
  EXPECT_EQ(r.read_varint(), ~std::uint64_t{0});
}

TEST(ByteRoundTrip, String) {
  ByteWriter w;
  w.write_string("hello swing");
  w.write_string("");
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_string(), "hello swing");
  EXPECT_EQ(r.read_string(), "");
}

TEST(ByteRoundTrip, BytesBlob) {
  Bytes payload = {1, 2, 3, 250, 251};
  ByteWriter w;
  w.write_bytes(payload);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_bytes(), payload);
}

TEST(ByteRoundTrip, MixedSequence) {
  ByteWriter w;
  w.write_u8(9);
  w.write_string("k");
  w.write_varint(300);
  w.write_f64(2.5);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u8(), 9);
  EXPECT_EQ(r.read_string(), "k");
  EXPECT_EQ(r.read_varint(), 300u);
  EXPECT_DOUBLE_EQ(r.read_f64(), 2.5);
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, UnderrunThrows) {
  ByteWriter w;
  w.write_u8(1);
  ByteReader r{w.data()};
  r.read_u8();
  EXPECT_THROW(r.read_u8(), WireFormatError);
  EXPECT_THROW(r.read_u64(), WireFormatError);
}

TEST(ByteReader, TruncatedStringThrows) {
  ByteWriter w;
  w.write_varint(100);  // Claims 100 bytes follow; none do.
  ByteReader r{w.data()};
  EXPECT_THROW(r.read_string(), WireFormatError);
}

TEST(ByteReader, MalformedVarintThrows) {
  // Eleven continuation bytes: > 64 bits of shift.
  Bytes data(11, 0x80);
  ByteReader r{data};
  EXPECT_THROW(r.read_varint(), WireFormatError);
}

TEST(ByteReader, Remaining) {
  ByteWriter w;
  w.write_u32(1);
  ByteReader r{w.data()};
  EXPECT_EQ(r.remaining(), 4u);
  r.read_u8();
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(ByteWriter, TakeMovesBuffer) {
  ByteWriter w;
  w.write_u8(7);
  Bytes b = w.take();
  EXPECT_EQ(b.size(), 1u);
}

// --- Wire plane v2: span reads ---------------------------------------------

TEST(ByteReader, TakeSpanViewsWithoutCopy) {
  const Bytes data{1, 2, 3, 4, 5};
  ByteReader r{data};
  const auto head = r.take_span(2);
  EXPECT_EQ(head.data(), data.data());  // A view, not a copy.
  EXPECT_EQ(head.size(), 2u);
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(ByteReader, TakeSpanPastEndThrows) {
  const Bytes data{1, 2, 3};
  ByteReader r{data};
  EXPECT_THROW(r.take_span(4), WireFormatError);
  // The reader survives a failed take: nothing was consumed.
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_NO_THROW(r.take_span(3));
}

TEST(ByteReader, ReadSpanAndViewMatchOwningReads) {
  ByteWriter w;
  w.write_string("hello");
  w.write_bytes(Bytes{9, 8});

  ByteReader zero_copy{w.data()};
  EXPECT_EQ(zero_copy.read_view(), "hello");
  const auto span = zero_copy.read_span();
  EXPECT_EQ(Bytes(span.begin(), span.end()), (Bytes{9, 8}));

  ByteReader owning{w.data()};
  EXPECT_EQ(owning.read_string(), "hello");
  EXPECT_EQ(owning.read_bytes(), (Bytes{9, 8}));
}

TEST(ByteReader, TruncatedReadSpanThrows) {
  ByteWriter w;
  w.write_varint(100);  // Claims a 100-byte body; none present.
  ByteReader r{w.data()};
  EXPECT_THROW(r.read_span(), WireFormatError);
}

TEST(VarintSize, MatchesEncodedLength) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{1} << 42,
        std::numeric_limits<std::uint64_t>::max()}) {
    ByteWriter w;
    w.write_varint(v);
    EXPECT_EQ(w.data().size(), varint_size(v)) << v;
  }
}

// --- Wire plane v2: SendArena ----------------------------------------------

TEST(SendArena, FramesReuseTheBuffer) {
  SendArena arena;
  ByteWriter& w1 = arena.begin_frame();
  w1.write_u64(1);
  const auto f1 = arena.end_frame();
  EXPECT_EQ(f1.size(), 8u);
  const auto* storage = f1.data();

  ByteWriter& w2 = arena.begin_frame();
  w2.write_u8(2);
  const auto f2 = arena.end_frame();
  EXPECT_EQ(f2.size(), 1u);          // Cleared, not appended.
  EXPECT_EQ(f2.data(), storage);      // Same backing storage, no realloc.
  EXPECT_EQ(arena.epoch(), 2u);
}

TEST(SendArena, ResetReleasesCapacity) {
  SendArena arena;
  ByteWriter& w = arena.begin_frame();
  w.write_bytes(Bytes(4096, 0xaa));
  arena.end_frame();
  EXPECT_GE(arena.capacity(), 4096u);
  arena.reset();
  EXPECT_EQ(arena.capacity(), 0u);
}

// The checked contract: misnested frame operations are caller bugs and must
// die loudly, not corrupt in-flight bytes.
TEST(SendArenaDeathTest, BeginWhileOpenDies) {
  SendArena arena;
  arena.begin_frame();
  EXPECT_DEATH(arena.begin_frame(), "begin_frame with a frame still open");
}

TEST(SendArenaDeathTest, EndWithoutBeginDies) {
  SendArena arena;
  EXPECT_DEATH(arena.end_frame(), "end_frame without begin_frame");
}

TEST(SendArenaDeathTest, ResetMidFrameDies) {
  SendArena arena;
  arena.begin_frame();
  EXPECT_DEATH(arena.reset(), "reset with a frame still open");
}

TEST(ByteWriterDeathTest, TakeOnArenaModeWriterDies) {
  Bytes external;
  ByteWriter w{external};
  w.write_u8(1);
  EXPECT_DEATH((void)w.take(), "take\\(\\) on an arena-mode writer");
}

}  // namespace
}  // namespace swing
