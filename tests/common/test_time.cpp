#include "common/time.h"

#include <gtest/gtest.h>

namespace swing {
namespace {

TEST(SimDuration, Constructors) {
  EXPECT_EQ(nanos(5).nanos(), 5);
  EXPECT_EQ(micros(2.0).nanos(), 2000);
  EXPECT_EQ(millis(3.0).nanos(), 3'000'000);
  EXPECT_EQ(seconds(1.5).nanos(), 1'500'000'000);
}

TEST(SimDuration, Conversions) {
  const SimDuration d = millis(1.5);
  EXPECT_DOUBLE_EQ(d.millis(), 1.5);
  EXPECT_DOUBLE_EQ(d.micros(), 1500.0);
  EXPECT_DOUBLE_EQ(d.seconds(), 0.0015);
}

TEST(SimDuration, Arithmetic) {
  EXPECT_EQ(millis(2) + millis(3), millis(5));
  EXPECT_EQ(millis(5) - millis(3), millis(2));
  EXPECT_EQ(millis(2) * 2.5, millis(5));
  EXPECT_EQ(2.5 * millis(2), millis(5));
  EXPECT_DOUBLE_EQ(millis(6) / millis(3), 2.0);
}

TEST(SimDuration, CompoundAssignment) {
  SimDuration d = millis(1);
  d += millis(2);
  EXPECT_EQ(d, millis(3));
  d -= millis(1);
  EXPECT_EQ(d, millis(2));
}

TEST(SimDuration, NegativeRepresentable) {
  const SimDuration d = millis(1) - millis(3);
  EXPECT_EQ(d, millis(-2));
  EXPECT_LT(d, SimDuration{});
}

TEST(SimDuration, Comparison) {
  EXPECT_LT(millis(1), millis(2));
  EXPECT_GE(seconds(1), millis(1000));
}

TEST(SimTime, StartsAtZero) {
  EXPECT_EQ(SimTime{}.nanos(), 0);
}

TEST(SimTime, PlusDuration) {
  const SimTime t = SimTime{} + seconds(2);
  EXPECT_DOUBLE_EQ(t.seconds(), 2.0);
  EXPECT_DOUBLE_EQ((t + millis(500)).seconds(), 2.5);
}

TEST(SimTime, Difference) {
  const SimTime a = SimTime{} + seconds(5);
  const SimTime b = SimTime{} + seconds(2);
  EXPECT_EQ(a - b, seconds(3));
  EXPECT_EQ(b - a, seconds(-3));
}

TEST(SimTime, CompoundAdd) {
  SimTime t;
  t += millis(250);
  EXPECT_DOUBLE_EQ(t.millis(), 250.0);
}

TEST(SimTime, MaxIsLarge) {
  EXPECT_GT(SimTime::max(), SimTime{} + seconds(1e9));
}

}  // namespace
}  // namespace swing
