#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace swing {
namespace {

TEST(TextTable, HeaderOnly) {
  TextTable t({"a", "b"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("b"), std::string::npos);
}

TEST(TextTable, RowFormatting) {
  TextTable t({"name", "value"});
  t.row("x", 42);
  t.row("y", 3.14159);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);  // 2-decimal default.
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"k", "v"});
  t.row("long-name-here", 1);
  t.row("s", 2);
  std::ostringstream os;
  t.print(os);
  std::istringstream lines{os.str()};
  std::string header, sep, row1, row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(row1.size(), row2.size());
}

TEST(TextTable, Csv) {
  TextTable t({"a", "b"});
  t.row(1, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace swing
