#include "common/ascii_chart.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace swing {
namespace {

TEST(AsciiChart, EmptyDataHandled) {
  EXPECT_EQ(render_chart({}), "(no data)\n");
  EXPECT_EQ(render_chart({ChartSeries{"s", '*', {}}}), "(no data)\n");
}

TEST(AsciiChart, GlyphAppearsForEachSeries) {
  ChartSeries a{"alpha", 'a', {{0, 0}, {1, 1}}};
  ChartSeries b{"beta", 'b', {{0, 1}, {1, 0}}};
  const std::string out = render_chart({a, b});
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(AsciiChart, ExtremesLandOnCorners) {
  ChartOptions options;
  options.width = 20;
  options.height = 5;
  ChartSeries s{"s", '*', {{0, 0}, {10, 100}}};
  const std::string out = render_chart({s}, options);
  std::vector<std::string> lines;
  std::istringstream in{out};
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  // Max point on the first plot row (rightmost), min on the last plot row
  // (leftmost of the plot area).
  EXPECT_EQ(lines[0].back(), '*');
  const std::string& bottom = lines[4];
  EXPECT_EQ(bottom[11], '*');  // First plot column (after the 11-char gutter).
}

TEST(AsciiChart, FixedYRangeClips) {
  ChartOptions options;
  options.y_min = 0.0;
  options.y_max = 10.0;
  options.height = 5;
  options.width = 10;
  ChartSeries s{"s", '*', {{0, 500.0}}};  // Way above range: clipped out.
  const std::string out = render_chart({s}, options);
  // The glyph appears exactly once — in the legend, not the plot area.
  EXPECT_EQ(std::count(out.begin(), out.end(), '*'), 1);
}

TEST(AsciiChart, AxisLabelsShown) {
  ChartOptions options;
  options.x_label = "time (s)";
  options.y_label = "FPS";
  ChartSeries s{"tput", 't', {{0, 1}, {5, 2}}};
  const std::string out = render_chart({s}, options);
  EXPECT_NE(out.find("time (s)"), std::string::npos);
  EXPECT_NE(out.find("FPS"), std::string::npos);
}

TEST(AsciiBars, ProportionalLengths) {
  const std::string out = render_bars(
      {{"half", 5.0}, {"full", 10.0}}, /*width=*/10);
  // "full" bar should have 10 hashes, "half" 5.
  std::istringstream in{out};
  std::string half_line, full_line;
  std::getline(in, half_line);
  std::getline(in, full_line);
  EXPECT_EQ(std::count(half_line.begin(), half_line.end(), '#'), 5);
  EXPECT_EQ(std::count(full_line.begin(), full_line.end(), '#'), 10);
}

TEST(AsciiBars, UnitPrinted) {
  const std::string out = render_bars({{"x", 1.0}}, 10, "FPS");
  EXPECT_NE(out.find("FPS"), std::string::npos);
}

TEST(AsciiBars, ZeroValuesSafe) {
  const std::string out = render_bars({{"zero", 0.0}});
  EXPECT_NE(out.find("zero"), std::string::npos);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace swing
