#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace swing {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, NumericallyStableForLargeOffset) {
  OnlineStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(OnlineStats, Reset) {
  OnlineStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(SampleStats, ExactQuantiles) {
  SampleStats s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
}

TEST(SampleStats, InterpolatedQuantile) {
  SampleStats s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 9.0);
}

TEST(SampleStats, EmptyQuantileIsZero) {
  SampleStats s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(SampleStats, UnsortedInsertOrder) {
  SampleStats s;
  for (double x : {5.0, 1.0, 4.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleStats, AddAfterQuantileQuery) {
  SampleStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);  // Re-sorts lazily.
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Ewma, FirstSampleSetsValue) {
  Ewma e{0.5};
  EXPECT_FALSE(e.initialized());
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e{0.25};
  e.add(0.0);
  for (int i = 0; i < 100; ++i) e.add(50.0);
  EXPECT_NEAR(e.value(), 50.0, 1e-6);
}

TEST(Ewma, StepResponse) {
  Ewma e{0.5};
  e.add(0.0);
  e.add(100.0);
  EXPECT_DOUBLE_EQ(e.value(), 50.0);
  e.add(100.0);
  EXPECT_DOUBLE_EQ(e.value(), 75.0);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e{1.0};
  e.add(3.0);
  e.add(9.0);
  EXPECT_DOUBLE_EQ(e.value(), 9.0);
}

TEST(Ewma, SetOverrides) {
  Ewma e{0.25};
  e.set(42.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Ewma, Reset) {
  Ewma e{0.25};
  e.add(1.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
}

TEST(RateMeter, EmptyRateIsZero) {
  RateMeter m{seconds(1.0)};
  EXPECT_DOUBLE_EQ(m.rate(SimTime{} + seconds(5)), 0.0);
}

TEST(RateMeter, CountsEventsInWindow) {
  RateMeter m{seconds(1.0)};
  SimTime t;
  for (int i = 0; i < 10; ++i) {
    t += millis(50);
    m.record(t);
  }
  // All 10 events within the last second.
  EXPECT_DOUBLE_EQ(m.rate(t), 10.0);
}

TEST(RateMeter, EvictsOldEvents) {
  RateMeter m{seconds(1.0)};
  m.record(SimTime{} + millis(100));
  m.record(SimTime{} + millis(200));
  EXPECT_DOUBLE_EQ(m.rate(SimTime{} + millis(300)), 2.0);
  EXPECT_DOUBLE_EQ(m.rate(SimTime{} + seconds(2)), 0.0);
}

TEST(RateMeter, SteadyRateMeasuredCorrectly) {
  RateMeter m{seconds(1.0)};
  SimTime t;
  // 24 events/s for 3 seconds.
  for (int i = 0; i < 72; ++i) {
    t += millis(1000.0 / 24.0);
    m.record(t);
  }
  EXPECT_NEAR(m.rate(t), 24.0, 1.5);
}

TEST(RateMeter, WindowScaling) {
  RateMeter m{seconds(2.0)};
  SimTime t;
  for (int i = 0; i < 10; ++i) {
    t += millis(100);
    m.record(t);
  }
  // 10 events in a 2 s window = 5/s.
  EXPECT_DOUBLE_EQ(m.rate(t), 5.0);
}

TEST(RateMeter, Reset) {
  RateMeter m{seconds(1.0)};
  m.record(SimTime{} + millis(1));
  m.reset();
  EXPECT_DOUBLE_EQ(m.rate(SimTime{} + millis(2)), 0.0);
}

}  // namespace
}  // namespace swing
