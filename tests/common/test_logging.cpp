#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace swing {
namespace {

TEST(Logging, LevelGatesOutput) {
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}

TEST(Logging, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kError));
  Logger::instance().set_level(LogLevel::kWarn);  // Restore default.
}

TEST(Logging, MacroSkipsEvaluationWhenDisabled) {
  Logger::instance().set_level(LogLevel::kWarn);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  SWING_LOG(kDebug) << "never built " << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(Logging, WarnGoesToStderr) {
  Logger::instance().set_level(LogLevel::kWarn);
  std::ostringstream captured;
  auto* old = std::cerr.rdbuf(captured.rdbuf());
  SWING_LOG(kWarn) << "alpha " << 7;
  std::cerr.rdbuf(old);
  EXPECT_NE(captured.str().find("WARN"), std::string::npos);
  EXPECT_NE(captured.str().find("alpha 7"), std::string::npos);
}

}  // namespace
}  // namespace swing
