#include "common/check.h"

#include <gtest/gtest.h>

namespace swing {
namespace {

TEST(Check, PassingChecksAreSilent) {
  SWING_CHECK(1 + 1 == 2);
  SWING_CHECK_EQ(4, 4);
  SWING_CHECK_NE(4, 5);
  SWING_CHECK_LT(3, 4);
  SWING_CHECK_LE(4, 4);
  SWING_CHECK_GT(5, 4);
  SWING_CHECK_GE(4, 4);
}

TEST(Check, StreamedMessageNotEvaluatedOnSuccess) {
  int evaluations = 0;
  SWING_CHECK(true) << "never built: " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  SWING_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailureAbortsWithConditionText) {
  EXPECT_DEATH(SWING_CHECK(2 + 2 == 5),
               "SWING_CHECK failed: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, FailureIncludesStreamedMessage) {
  const int frame = 17;
  EXPECT_DEATH(SWING_CHECK(false) << "while decoding frame " << frame,
               "while decoding frame 17");
}

TEST(CheckDeathTest, ComparisonPrintsBothOperands) {
  const int lhs = 3, rhs = 9;
  EXPECT_DEATH(SWING_CHECK_EQ(lhs, rhs), "\\(3 vs 9\\)");
  EXPECT_DEATH(SWING_CHECK_LT(rhs, lhs), "\\(9 vs 3\\)");
  EXPECT_DEATH(SWING_CHECK_LE(rhs, lhs), "\\(9 vs 3\\)");
}

TEST(CheckDeathTest, FailureNamesSourceLocation) {
  EXPECT_DEATH(SWING_CHECK(false), "test_check\\.cpp");
}

TEST(CheckDeathTest, UnreachableAborts) {
  EXPECT_DEATH(SWING_UNREACHABLE("impossible policy kind"),
               "SWING_UNREACHABLE: impossible policy kind");
}

#ifdef NDEBUG

TEST(Check, DcheckCompiledOutInReleaseBuilds) {
  int evaluations = 0;
  // The condition must not run — and must not abort despite being false.
  SWING_DCHECK(++evaluations > 100) << "unseen";
  SWING_DCHECK_EQ(++evaluations, -1);
  EXPECT_EQ(evaluations, 0);
}

#else

TEST(Check, DcheckEvaluatesInDebugBuilds) {
  int evaluations = 0;
  SWING_DCHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckDeathTest, DcheckFailureAbortsInDebugBuilds) {
  EXPECT_DEATH(SWING_DCHECK(false) << "debug invariant", "debug invariant");
  EXPECT_DEATH(SWING_DCHECK_GE(1, 2), "\\(1 vs 2\\)");
}

#endif  // NDEBUG

}  // namespace
}  // namespace swing
