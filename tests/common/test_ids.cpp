#include "common/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace swing {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  DeviceId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), StrongId<DeviceTag>::kInvalid);
}

TEST(StrongId, ConstructedIsValid) {
  DeviceId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongId, MaxValueIsReservedAsInvalid) {
  DeviceId id{~std::uint64_t{0}};
  EXPECT_FALSE(id.valid());
}

TEST(StrongId, Equality) {
  EXPECT_EQ(DeviceId{3}, DeviceId{3});
  EXPECT_NE(DeviceId{3}, DeviceId{4});
}

TEST(StrongId, Ordering) {
  EXPECT_LT(DeviceId{1}, DeviceId{2});
  EXPECT_GT(TupleId{9}, TupleId{8});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<DeviceId, OperatorId>);
  static_assert(!std::is_same_v<InstanceId, TupleId>);
}

TEST(StrongId, Streaming) {
  std::ostringstream os;
  os << DeviceId{42};
  EXPECT_EQ(os.str(), "42");
}

TEST(StrongId, Hashable) {
  std::unordered_set<DeviceId> set;
  set.insert(DeviceId{1});
  set.insert(DeviceId{2});
  set.insert(DeviceId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(DeviceId{2}));
}

}  // namespace
}  // namespace swing
