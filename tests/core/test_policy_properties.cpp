// Property tests over random inputs: invariants every routing policy must
// satisfy for ANY downstream set and rate, plus LRS-specific minimality.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "core/policy.h"

namespace swing::core {
namespace {

std::vector<DownstreamInfo> random_downstreams(Rng& rng, std::size_t n) {
  std::vector<DownstreamInfo> downs;
  downs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    DownstreamInfo d;
    d.id = InstanceId{i + 1};
    d.latency_ms = rng.uniform(1.0, 5000.0);
    d.processing_ms = rng.uniform(1.0, d.latency_ms);
    d.battery = rng.uniform();
    downs.push_back(d);
  }
  return downs;
}

class PolicyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyPropertyTest, InvariantsForAllPoliciesAndInputs) {
  Rng rng{GetParam()};
  static constexpr PolicyKind kEvery[] = {
      PolicyKind::kRR,  PolicyKind::kPR,  PolicyKind::kLR,
      PolicyKind::kPRS, PolicyKind::kLRS, PolicyKind::kELRS};

  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng.uniform_int(12);
    const auto downs = random_downstreams(rng, n);
    const double rate = rng.uniform(0.0, 100.0);

    for (PolicyKind kind : kEvery) {
      const auto policy = RoutingPolicy::make(kind);
      const auto d = policy->decide(downs, rate);

      // Non-empty selection whenever downstreams exist.
      ASSERT_FALSE(d.selected.empty())
          << policy_name(kind) << " n=" << n << " rate=" << rate;
      // Weights aligned and normalised.
      ASSERT_EQ(d.weights.size(), d.selected.size());
      const double total =
          std::accumulate(d.weights.begin(), d.weights.end(), 0.0);
      EXPECT_NEAR(total, 1.0, 1e-6) << policy_name(kind);
      for (double w : d.weights) {
        EXPECT_GE(w, 0.0);
        EXPECT_LE(w, 1.0 + 1e-9);
      }
      // Selected ids are distinct members of the input.
      std::vector<InstanceId> sorted = d.selected;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(
          std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
      for (InstanceId id : d.selected) {
        EXPECT_TRUE(std::any_of(
            downs.begin(), downs.end(),
            [&](const DownstreamInfo& x) { return x.id == id; }));
      }
    }
  }
}

TEST_P(PolicyPropertyTest, LrsSelectionIsMinimalPrefix) {
  Rng rng{GetParam() * 131 + 7};
  const auto policy = RoutingPolicy::make(PolicyKind::kLRS);

  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 2 + rng.uniform_int(10);
    const auto downs = random_downstreams(rng, n);
    const double rate = rng.uniform(0.1, 60.0);
    const auto d = policy->decide(downs, rate);

    // Sum of selected service rates.
    auto mu = [&](InstanceId id) {
      for (const auto& x : downs) {
        if (x.id == id) return 1000.0 / std::max(x.latency_ms, 1e-3);
      }
      return 0.0;
    };
    double sum = 0.0;
    for (InstanceId id : d.selected) sum += mu(id);

    if (d.selected.size() < downs.size()) {
      // Feasible: the sum meets the rate, and dropping the slowest
      // selected member must break it (minimality).
      EXPECT_GE(sum, rate - 1e-9);
      double slowest = 1e18;
      for (InstanceId id : d.selected) slowest = std::min(slowest, mu(id));
      EXPECT_LT(sum - slowest, rate);
    } else {
      // All selected: either exactly enough or infeasible.
      SUCCEED();
    }
  }
}

TEST_P(PolicyPropertyTest, SelectionMonotoneInRate) {
  // A higher target rate never selects fewer workers.
  Rng rng{GetParam() * 733 + 3};
  const auto policy = RoutingPolicy::make(PolicyKind::kLRS);
  for (int round = 0; round < 20; ++round) {
    const auto downs = random_downstreams(rng, 2 + rng.uniform_int(10));
    const double r1 = rng.uniform(0.1, 40.0);
    const double r2 = r1 + rng.uniform(0.1, 40.0);
    EXPECT_LE(policy->decide(downs, r1).selected.size(),
              policy->decide(downs, r2).selected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace swing::core
