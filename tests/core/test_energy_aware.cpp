// The ELRS extension policy: latency-based selection + battery-aware
// weighting and a battery floor.
#include <gtest/gtest.h>

#include "core/policy.h"

namespace swing::core {
namespace {

DownstreamInfo info(std::uint64_t id, double latency_ms, double battery) {
  return DownstreamInfo{InstanceId{id}, latency_ms, latency_ms * 0.6,
                        battery};
}

TEST(Elrs, NameRoundTrip) {
  EXPECT_EQ(policy_name(PolicyKind::kELRS), "ELRS");
  EXPECT_EQ(policy_from_name("elrs"), PolicyKind::kELRS);
}

TEST(Elrs, NotInPaperPolicySweep) {
  for (PolicyKind kind : kAllPolicies) {
    EXPECT_NE(kind, PolicyKind::kELRS);
  }
}

TEST(Elrs, Traits) {
  EXPECT_TRUE(policy_uses_selection(PolicyKind::kELRS));
  EXPECT_TRUE(policy_uses_latency(PolicyKind::kELRS));
  EXPECT_TRUE(policy_uses_battery(PolicyKind::kELRS));
  EXPECT_FALSE(policy_uses_battery(PolicyKind::kLRS));
}

TEST(Elrs, FullBatteriesDegenerateToLrs) {
  const auto elrs = RoutingPolicy::make(PolicyKind::kELRS);
  const auto lrs = RoutingPolicy::make(PolicyKind::kLRS);
  const std::vector<DownstreamInfo> downs = {
      info(1, 70.0, 1.0), info(2, 130.0, 1.0), info(3, 90.0, 1.0)};
  const auto de = elrs->decide(downs, 24.0);
  const auto dl = lrs->decide(downs, 24.0);
  ASSERT_EQ(de.selected, dl.selected);
  for (std::size_t i = 0; i < de.weights.size(); ++i) {
    EXPECT_NEAR(de.weights[i], dl.weights[i], 1e-9);
  }
}

TEST(Elrs, WeightsScaleWithBattery) {
  const auto policy = RoutingPolicy::make(PolicyKind::kELRS);
  // Same latency, batteries 1.0 vs 0.25: weights must be 4:1.
  const std::vector<DownstreamInfo> downs = {info(1, 100.0, 1.0),
                                             info(2, 100.0, 0.25)};
  const auto d = policy->decide(downs, 100.0);  // Rate forces both in.
  ASSERT_EQ(d.selected.size(), 2u);
  const std::size_t i1 = d.selected[0] == InstanceId{1} ? 0 : 1;
  EXPECT_NEAR(d.weights[i1], 0.8, 1e-9);
  EXPECT_NEAR(d.weights[1 - i1], 0.2, 1e-9);
}

TEST(Elrs, BatteryExponentTunesAggressiveness) {
  PolicyOptions options;
  options.battery_exponent = 2.0;
  const auto policy = RoutingPolicy::make(PolicyKind::kELRS, options);
  const std::vector<DownstreamInfo> downs = {info(1, 100.0, 1.0),
                                             info(2, 100.0, 0.5)};
  const auto d = policy->decide(downs, 100.0);
  const std::size_t i1 = d.selected[0] == InstanceId{1} ? 0 : 1;
  // 1 : 0.25 ratio.
  EXPECT_NEAR(d.weights[i1] / d.weights[1 - i1], 4.0, 1e-6);
}

TEST(Elrs, ZeroExponentDisablesBatteryTerm) {
  PolicyOptions options;
  options.battery_exponent = 0.0;
  options.min_battery = 0.0;  // Disable the floor too.
  const auto policy = RoutingPolicy::make(PolicyKind::kELRS, options);
  const std::vector<DownstreamInfo> downs = {info(1, 100.0, 1.0),
                                             info(2, 100.0, 0.01)};
  const auto d = policy->decide(downs, 100.0);
  ASSERT_EQ(d.weights.size(), 2u);
  EXPECT_NEAR(d.weights[0], d.weights[1], 1e-9);
}

TEST(Elrs, NearlyEmptyDeviceSpared) {
  const auto policy = RoutingPolicy::make(PolicyKind::kELRS);
  // Fastest device is below the 5% battery floor: it must not be selected
  // while healthy peers can cover the rate.
  const std::vector<DownstreamInfo> downs = {
      info(1, 50.0, 0.02), info(2, 90.0, 0.9), info(3, 100.0, 0.8)};
  const auto d = policy->decide(downs, 20.0);
  for (InstanceId id : d.selected) {
    EXPECT_NE(id, InstanceId{1});
  }
}

TEST(Elrs, AllEmptyFallsBackToEveryone) {
  const auto policy = RoutingPolicy::make(PolicyKind::kELRS);
  const std::vector<DownstreamInfo> downs = {info(1, 50.0, 0.01),
                                             info(2, 90.0, 0.02)};
  const auto d = policy->decide(downs, 100.0);
  // Better a dying device than no service at all.
  EXPECT_EQ(d.selected.size(), 2u);
}

TEST(Elrs, LrsIgnoresBattery) {
  const auto policy = RoutingPolicy::make(PolicyKind::kLRS);
  const std::vector<DownstreamInfo> downs = {info(1, 50.0, 0.01),
                                             info(2, 90.0, 1.0)};
  const auto d = policy->decide(downs, 15.0);
  ASSERT_FALSE(d.selected.empty());
  EXPECT_EQ(d.selected[0], InstanceId{1});  // Fastest wins, battery be damned.
}

}  // namespace
}  // namespace swing::core
