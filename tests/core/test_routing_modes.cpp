// Tests for the routing-mode ablation (probabilistic vs deterministic
// smooth weighted round-robin), selection headroom, and the
// programmer-declared target rate (paper §IV-A).
#include <gtest/gtest.h>

#include <map>

#include "core/swarm_manager.h"

namespace swing::core {
namespace {

SwarmManagerConfig base_config(PolicyKind policy) {
  SwarmManagerConfig config;
  config.policy = policy;
  config.probe_every_ticks = 0;
  config.probe_unmeasured_every = 0;
  return config;
}

void seed(SwarmManager& m, std::map<std::uint64_t, double> latencies) {
  for (int round = 0; round < 10; ++round) {
    for (const auto& [id, latency] : latencies) {
      m.record_ack(InstanceId{id}, latency, latency * 0.6, SimTime{});
    }
  }
}

TEST(DeterministicRouting, SplitMatchesWeightsExactly) {
  SwarmManagerConfig config = base_config(PolicyKind::kLR);
  config.routing_mode = RoutingMode::kDeterministic;
  SwarmManager m{config, Rng{1}};
  m.add_downstream(InstanceId{1});
  m.add_downstream(InstanceId{2});
  seed(m, {{1, 50.0}, {2, 100.0}});  // Weights 2:1.
  m.tick(SimTime{} + seconds(1));

  std::map<std::uint64_t, int> counts;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    ++counts[m.route(SimTime{} + seconds(1))->id.value()];
  }
  // Zero-variance split: exact to within one tuple.
  EXPECT_NEAR(counts[1], 2000, 1);
  EXPECT_NEAR(counts[2], 1000, 1);
}

TEST(DeterministicRouting, LowerShortWindowVarianceThanProbabilistic) {
  auto max_window_dev = [](RoutingMode mode) {
    SwarmManagerConfig config = base_config(PolicyKind::kLR);
    config.routing_mode = mode;
    SwarmManager m{config, Rng{2}};
    m.add_downstream(InstanceId{1});
    m.add_downstream(InstanceId{2});
    seed(m, {{1, 50.0}, {2, 50.0}});  // Equal weights.
    m.tick(SimTime{} + seconds(1));
    // Largest deviation from the expected 12 per 24-tuple window.
    double worst = 0.0;
    for (int w = 0; w < 50; ++w) {
      int to_first = 0;
      for (int i = 0; i < 24; ++i) {
        if (m.route(SimTime{} + seconds(1))->id == InstanceId{1}) ++to_first;
      }
      worst = std::max(worst, std::abs(to_first - 12.0));
    }
    return worst;
  };
  EXPECT_LT(max_window_dev(RoutingMode::kDeterministic), 2.0);
  EXPECT_GT(max_window_dev(RoutingMode::kProbabilistic), 2.0);
}

TEST(DeterministicRouting, ThreeWayWeightsConverge) {
  SwarmManagerConfig config = base_config(PolicyKind::kLR);
  config.routing_mode = RoutingMode::kDeterministic;
  SwarmManager m{config, Rng{3}};
  for (std::uint64_t i = 1; i <= 3; ++i) m.add_downstream(InstanceId{i});
  seed(m, {{1, 50.0}, {2, 100.0}, {3, 200.0}});  // 4:2:1.
  m.tick(SimTime{} + seconds(1));
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 7000; ++i) {
    ++counts[m.route(SimTime{} + seconds(1))->id.value()];
  }
  EXPECT_NEAR(counts[1], 4000, 5);
  EXPECT_NEAR(counts[2], 2000, 5);
  EXPECT_NEAR(counts[3], 1000, 5);
}

TEST(DeterministicRouting, CreditsResetOnDecisionChange) {
  SwarmManagerConfig config = base_config(PolicyKind::kLR);
  config.routing_mode = RoutingMode::kDeterministic;
  SwarmManager m{config, Rng{4}};
  m.add_downstream(InstanceId{1});
  m.add_downstream(InstanceId{2});
  seed(m, {{1, 50.0}, {2, 50.0}});
  m.tick(SimTime{} + seconds(1));
  for (int i = 0; i < 11; ++i) m.route(SimTime{} + seconds(1));
  // Membership change mid-stream: no stale credit may be charged.
  m.add_downstream(InstanceId{3});
  seed(m, {{3, 50.0}});
  m.tick(SimTime{} + seconds(2));
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 300; ++i) {
    ++counts[m.route(SimTime{} + seconds(2))->id.value()];
  }
  EXPECT_NEAR(counts[1], 100, 2);
  EXPECT_NEAR(counts[2], 100, 2);
  EXPECT_NEAR(counts[3], 100, 2);
}

TEST(SelectionHeadroom, AddsSlackWorkers) {
  // Three equal workers, mu = 10/s each, input 12/s: headroom 1 keeps 2,
  // headroom 1.8 keeps 3.
  auto selected_count = [](double headroom) {
    SwarmManagerConfig config = base_config(PolicyKind::kLRS);
    config.policy_options.selection_headroom = headroom;
    config.target_rate_override = 12.0;
    SwarmManager m{config, Rng{5}};
    for (std::uint64_t i = 1; i <= 3; ++i) m.add_downstream(InstanceId{i});
    seed(m, {{1, 100.0}, {2, 100.0}, {3, 100.0}});
    m.tick(SimTime{} + seconds(1));
    return m.decision().selected.size();
  };
  EXPECT_EQ(selected_count(1.0), 2u);
  EXPECT_EQ(selected_count(1.8), 3u);
}

TEST(TargetRateOverride, UsedInsteadOfMeasuredRate) {
  SwarmManagerConfig config = base_config(PolicyKind::kLRS);
  config.target_rate_override = 24.0;
  SwarmManager m{config, Rng{6}};
  for (std::uint64_t i = 1; i <= 3; ++i) m.add_downstream(InstanceId{i});
  seed(m, {{1, 100.0}, {2, 100.0}, {3, 100.0}});  // mu = 10/s each.
  // No tuples measured at all; the declared 24/s still demands 3 workers.
  m.tick(SimTime{} + seconds(1));
  EXPECT_EQ(m.decision().selected.size(), 3u);
}

TEST(TargetRateOverride, ZeroMeansMeasured) {
  SwarmManagerConfig config = base_config(PolicyKind::kLRS);
  config.target_rate_override = 0.0;
  SwarmManager m{config, Rng{7}};
  for (std::uint64_t i = 1; i <= 3; ++i) m.add_downstream(InstanceId{i});
  seed(m, {{1, 100.0}, {2, 100.0}, {3, 100.0}});
  m.tick(SimTime{} + seconds(1));  // Measured rate ~0: one worker enough.
  EXPECT_EQ(m.decision().selected.size(), 1u);
}

}  // namespace
}  // namespace swing::core
