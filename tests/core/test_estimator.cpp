#include "core/latency_estimator.h"

#include <gtest/gtest.h>

namespace swing::core {
namespace {

TEST(Estimator, UnknownDownstreamGetsDefaults) {
  EstimatorConfig config;
  config.default_latency_ms = 40.0;
  config.default_processing_ms = 30.0;
  LatencyEstimator est{config};
  const auto info = est.estimate(InstanceId{1});
  EXPECT_DOUBLE_EQ(info.latency_ms, 40.0);
  EXPECT_DOUBLE_EQ(info.processing_ms, 30.0);
  EXPECT_FALSE(est.measured(InstanceId{1}));
}

TEST(Estimator, AddAndRemove) {
  LatencyEstimator est;
  est.add_downstream(InstanceId{1});
  EXPECT_TRUE(est.tracks(InstanceId{1}));
  EXPECT_EQ(est.downstream_count(), 1u);
  est.remove_downstream(InstanceId{1});
  EXPECT_FALSE(est.tracks(InstanceId{1}));
}

TEST(Estimator, AddIsIdempotent) {
  LatencyEstimator est;
  est.add_downstream(InstanceId{1});
  est.record_ack(InstanceId{1}, 100.0, 50.0, SimTime{});
  est.add_downstream(InstanceId{1});  // Must not reset the estimate.
  EXPECT_TRUE(est.measured(InstanceId{1}));
  EXPECT_DOUBLE_EQ(est.estimate(InstanceId{1}).latency_ms, 100.0);
}

TEST(Estimator, FirstAckSetsEstimate) {
  LatencyEstimator est;
  est.record_ack(InstanceId{1}, 123.0, 45.0, SimTime{});
  EXPECT_TRUE(est.measured(InstanceId{1}));
  EXPECT_DOUBLE_EQ(est.estimate(InstanceId{1}).latency_ms, 123.0);
  EXPECT_DOUBLE_EQ(est.estimate(InstanceId{1}).processing_ms, 45.0);
}

TEST(Estimator, MovingAverageSmoothes) {
  EstimatorConfig config;
  config.ewma_alpha = 0.5;
  LatencyEstimator est{config};
  est.record_ack(InstanceId{1}, 100.0, 0.0, SimTime{});
  est.record_ack(InstanceId{1}, 200.0, 0.0, SimTime{});
  EXPECT_DOUBLE_EQ(est.estimate(InstanceId{1}).latency_ms, 150.0);
}

TEST(Estimator, ConvergesToSteadyValue) {
  LatencyEstimator est;
  for (int i = 0; i < 100; ++i) {
    est.record_ack(InstanceId{1}, 80.0, 40.0, SimTime{});
  }
  EXPECT_NEAR(est.estimate(InstanceId{1}).latency_ms, 80.0, 1e-6);
}

TEST(Estimator, TracksMultipleDownstreamsIndependently) {
  LatencyEstimator est;
  est.record_ack(InstanceId{1}, 50.0, 25.0, SimTime{});
  est.record_ack(InstanceId{2}, 500.0, 250.0, SimTime{});
  EXPECT_DOUBLE_EQ(est.estimate(InstanceId{1}).latency_ms, 50.0);
  EXPECT_DOUBLE_EQ(est.estimate(InstanceId{2}).latency_ms, 500.0);
}

TEST(Estimator, EstimatesSortedById) {
  LatencyEstimator est;
  est.add_downstream(InstanceId{5});
  est.add_downstream(InstanceId{1});
  est.add_downstream(InstanceId{3});
  const auto all = est.estimates();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, InstanceId{1});
  EXPECT_EQ(all[1].id, InstanceId{3});
  EXPECT_EQ(all[2].id, InstanceId{5});
}

TEST(Estimator, LastAckTimeTracked) {
  LatencyEstimator est;
  EXPECT_EQ(est.last_ack(InstanceId{1}), SimTime{});
  est.record_ack(InstanceId{1}, 10.0, 5.0, SimTime{} + seconds(3));
  EXPECT_EQ(est.last_ack(InstanceId{1}), SimTime{} + seconds(3));
}

TEST(Estimator, RemoveClearsHistory) {
  LatencyEstimator est;
  est.record_ack(InstanceId{1}, 999.0, 1.0, SimTime{});
  est.remove_downstream(InstanceId{1});
  EXPECT_FALSE(est.measured(InstanceId{1}));
  EXPECT_DOUBLE_EQ(est.estimate(InstanceId{1}).latency_ms,
                   EstimatorConfig{}.default_latency_ms);
}

TEST(Estimator, ReactsToRegimeChange) {
  // A device whose latency jumps (user walked away) must be re-estimated
  // within a handful of ACKs.
  LatencyEstimator est;  // alpha = 0.3.
  for (int i = 0; i < 50; ++i) {
    est.record_ack(InstanceId{1}, 80.0, 40.0, SimTime{});
  }
  for (int i = 0; i < 10; ++i) {
    est.record_ack(InstanceId{1}, 2000.0, 40.0, SimTime{});
  }
  EXPECT_GT(est.estimate(InstanceId{1}).latency_ms, 1800.0);
}

}  // namespace
}  // namespace swing::core
