// Unit tests for the swing-audit TupleLedger: conservation bucketing, ghost
// events, ordering and finiteness violations, and digest determinism.
#include "core/tuple_ledger.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace swing::core {
namespace {

SimTime at(std::int64_t ms) { return SimTime{ms * 1'000'000}; }

TEST(TupleLedger, EmptyLedgerIsConserved) {
  TupleLedger ledger;
  const AuditReport report = ledger.audit();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.conserved());
  EXPECT_EQ(report.emitted, 0u);
  EXPECT_EQ(ledger.events(), 0u);
}

TEST(TupleLedger, BucketsEveryTerminalState) {
  TupleLedger ledger;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ledger.on_emitted(TupleId{i}, at(std::int64_t(i)));
  }
  ledger.on_delivered(TupleId{0}, at(10));
  ledger.on_delivered(TupleId{1}, at(11));
  ledger.on_consumed(TupleId{2});
  ledger.on_dropped(TupleId{3}, DropReason::kStaleTtl);
  ledger.on_in_flight_at_shutdown(TupleId{4});

  const AuditReport report = ledger.audit();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.emitted, 5u);
  EXPECT_EQ(report.delivered, 2u);
  EXPECT_EQ(report.consumed, 1u);
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_EQ(report.in_flight_recorded, 1u);
  EXPECT_EQ(report.in_flight_residual, 0u);
  EXPECT_EQ(report.drops_by_reason.at(DropReason::kStaleTtl), 1u);
  EXPECT_TRUE(report.conserved());
}

TEST(TupleLedger, ResidualBreaksConservationButNotOk) {
  TupleLedger ledger;
  ledger.on_emitted(TupleId{7}, at(1));
  const AuditReport report = ledger.audit();
  EXPECT_TRUE(report.ok());  // No violation: it may still be in transit.
  EXPECT_EQ(report.in_flight_residual, 1u);
  EXPECT_FALSE(report.conserved());
}

TEST(TupleLedger, DeliveredWinsOverOtherStates) {
  // An id can legitimately accumulate several states (fan-out: one branch
  // delivers, the other is shed). The audit buckets it once, best outcome.
  TupleLedger ledger;
  ledger.on_emitted(TupleId{1}, at(0));
  ledger.on_dropped(TupleId{1}, DropReason::kBackpressureShed);
  ledger.on_delivered(TupleId{1}, at(5));
  const AuditReport report = ledger.audit();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.dropped, 0u);  // Bucketed as delivered, not dropped.
  EXPECT_TRUE(report.conserved());
}

TEST(TupleLedger, GhostDeliveryIsViolation) {
  TupleLedger ledger;
  ledger.on_delivered(TupleId{99}, at(1));
  const AuditReport report = ledger.audit();
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations.front().find("never emitted"),
            std::string::npos);
}

TEST(TupleLedger, GhostConsumptionAndDropAreViolations) {
  TupleLedger consumed;
  consumed.on_consumed(TupleId{5});
  EXPECT_FALSE(consumed.audit().ok());

  TupleLedger dropped;
  dropped.on_dropped(TupleId{6}, DropReason::kSendFailed);
  EXPECT_FALSE(dropped.audit().ok());
}

TEST(TupleLedger, DuplicateSourceEmissionIsViolation) {
  TupleLedger ledger;
  ledger.on_emitted(TupleId{3}, at(0));
  ledger.on_emitted(TupleId{3}, at(1));
  const AuditReport report = ledger.audit();
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations.front().find("more than once"),
            std::string::npos);
}

TEST(TupleLedger, ReemissionOfKnownIdIsLegal) {
  // The gesture windower mints window ids that collide with sample ids;
  // on_reemitted must tolerate that and count it as a stat, not a breach.
  TupleLedger ledger;
  ledger.on_emitted(TupleId{0}, at(0));
  ledger.on_consumed(TupleId{0});       // Sample absorbed by the windower.
  ledger.on_reemitted(TupleId{0}, at(2));  // Window 0 reuses the id.
  ledger.on_delivered(TupleId{0}, at(3));
  const AuditReport report = ledger.audit();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.reemissions, 1u);
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_TRUE(report.conserved());
}

TEST(TupleLedger, ReemittedFreshIdNeedsNoSourceEmission) {
  TupleLedger ledger;
  ledger.on_reemitted(TupleId{42}, at(1));
  ledger.on_delivered(TupleId{42}, at(2));
  const AuditReport report = ledger.audit();
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
}

TEST(TupleLedger, DuplicateDeliveryIsCountedNotViolation) {
  TupleLedger ledger;
  ledger.on_emitted(TupleId{1}, at(0));
  ledger.on_delivered(TupleId{1}, at(1));
  ledger.on_delivered(TupleId{1}, at(2));
  const AuditReport report = ledger.audit();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.duplicate_deliveries, 1u);
}

TEST(TupleLedger, ReorderReleasesMustBeMonotonePerSink) {
  TupleLedger ledger;
  const InstanceId sink{11};
  ledger.on_played(sink, TupleId{1}, at(1));
  ledger.on_played(sink, TupleId{2}, at(2));
  ledger.on_played(sink, TupleId{2}, at(3));  // Equal is fine.
  EXPECT_TRUE(ledger.audit().ok());

  ledger.on_played(sink, TupleId{1}, at(4));  // Regression.
  const AuditReport report = ledger.audit();
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations.front().find("monotonicity"),
            std::string::npos);
}

TEST(TupleLedger, MonotonicityIsPerSinkInstance) {
  TupleLedger ledger;
  ledger.on_played(InstanceId{1}, TupleId{9}, at(1));
  ledger.on_played(InstanceId{2}, TupleId{3}, at(2));  // Different sink: ok.
  EXPECT_TRUE(ledger.audit().ok());
}

TEST(TupleLedger, NonFiniteOrNegativeLatencyIsViolation) {
  TupleLedger fine;
  fine.on_latency_sample(0.0);
  fine.on_latency_sample(123.5);
  EXPECT_TRUE(fine.audit().ok());
  EXPECT_EQ(fine.audit().latency_samples, 2u);

  TupleLedger negative;
  negative.on_latency_sample(-1.0);
  EXPECT_FALSE(negative.audit().ok());

  TupleLedger nan;
  nan.on_latency_sample(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(nan.audit().ok());

  TupleLedger inf;
  inf.on_latency_sample(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(inf.audit().ok());
}

TEST(TupleLedger, ViolationListIsCapped) {
  TupleLedger ledger;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ledger.on_delivered(TupleId{1000 + i}, at(std::int64_t(i)));  // Ghosts.
  }
  const AuditReport report = ledger.audit();
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.violations.size(), 33u);  // Cap plus the overflow note.
}

TEST(TupleLedger, DigestIsOrderSensitiveAndDeterministic) {
  TupleLedger a;
  a.on_emitted(TupleId{1}, at(1));
  a.on_emitted(TupleId{2}, at(2));
  a.on_delivered(TupleId{1}, at(3));

  TupleLedger b;  // Same events, same order.
  b.on_emitted(TupleId{1}, at(1));
  b.on_emitted(TupleId{2}, at(2));
  b.on_delivered(TupleId{1}, at(3));
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.events(), b.events());

  TupleLedger c;  // Same events, swapped order.
  c.on_emitted(TupleId{2}, at(2));
  c.on_emitted(TupleId{1}, at(1));
  c.on_delivered(TupleId{1}, at(3));
  EXPECT_NE(a.digest(), c.digest());
}

TEST(TupleLedger, ControlEventsFoldIntoDigest) {
  TupleLedger a;
  TupleLedger b;
  a.on_control_event(1, 7, at(1));
  EXPECT_NE(a.digest(), b.digest());
  b.on_control_event(1, 7, at(1));
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.audit().control_events, 1u);
}

TEST(TupleLedger, SummaryMentionsEveryBucket) {
  TupleLedger ledger;
  ledger.on_emitted(TupleId{1}, at(0));
  ledger.on_delivered(TupleId{1}, at(1));
  const std::string s = ledger.audit().summary();
  EXPECT_NE(s.find("emitted"), std::string::npos);
  EXPECT_NE(s.find("delivered"), std::string::npos);
}

TEST(TupleLedger, DropReasonNamesAreDistinct) {
  EXPECT_STRNE(drop_reason_name(DropReason::kNoDownstream),
               drop_reason_name(DropReason::kSendFailed));
  EXPECT_STRNE(drop_reason_name(DropReason::kStaleTtl),
               drop_reason_name(DropReason::kLateReorder));
}

}  // namespace
}  // namespace swing::core
