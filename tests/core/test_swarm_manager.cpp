#include "core/swarm_manager.h"

#include <gtest/gtest.h>

#include <map>

namespace swing::core {
namespace {

SwarmManagerConfig config_for(PolicyKind policy) {
  SwarmManagerConfig config;
  config.policy = policy;
  return config;
}

// Feeds steady ACKs so the manager has measured estimates.
void seed_acks(SwarmManager& m, std::map<std::uint64_t, double> latencies,
               SimTime now = SimTime{}) {
  for (int round = 0; round < 10; ++round) {
    for (const auto& [id, latency] : latencies) {
      m.record_ack(InstanceId{id}, latency, latency * 0.6, now);
    }
  }
}

TEST(SwarmManager, NoDownstreamsRoutesNowhere) {
  SwarmManager m{config_for(PolicyKind::kLRS), Rng{1}};
  EXPECT_FALSE(m.route(SimTime{}).has_value());
  EXPECT_FALSE(m.has_downstreams());
}

TEST(SwarmManager, MembershipAddRemove) {
  SwarmManager m{config_for(PolicyKind::kLRS), Rng{1}};
  m.add_downstream(InstanceId{1});
  m.add_downstream(InstanceId{2});
  m.add_downstream(InstanceId{1});  // Duplicate ignored.
  EXPECT_EQ(m.downstreams().size(), 2u);
  m.remove_downstream(InstanceId{1});
  EXPECT_EQ(m.downstreams().size(), 1u);
  m.remove_downstream(InstanceId{99});  // Unknown: no-op.
  EXPECT_EQ(m.downstreams().size(), 1u);
}

TEST(SwarmManager, SetDownstreamsReplaces) {
  SwarmManager m{config_for(PolicyKind::kLRS), Rng{1}};
  m.add_downstream(InstanceId{1});
  m.set_downstreams({InstanceId{2}, InstanceId{3}});
  EXPECT_EQ(m.downstreams().size(), 2u);
  EXPECT_FALSE(m.estimator().tracks(InstanceId{1}));
}

TEST(SwarmManager, RoutesToKnownDownstream) {
  SwarmManager m{config_for(PolicyKind::kLRS), Rng{1}};
  m.add_downstream(InstanceId{7});
  const auto choice = m.route(SimTime{});
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->id, InstanceId{7});
}

TEST(SwarmManager, UnmeasuredBootstrapRoundRobins) {
  // With nothing measured, routing must spread across all downstreams
  // rather than flooding one (cold-start behaviour).
  SwarmManager m{config_for(PolicyKind::kLRS), Rng{1}};
  for (std::uint64_t i = 1; i <= 4; ++i) m.add_downstream(InstanceId{i});
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 400; ++i) {
    ++counts[m.route(SimTime{})->id.value()];
  }
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_NEAR(counts[i], 100, 10) << "downstream " << i;
  }
}

TEST(SwarmManager, RoutingFollowsWeightsAfterMeasurement) {
  SwarmManager m{config_for(PolicyKind::kLR), Rng{2}};
  m.add_downstream(InstanceId{1});
  m.add_downstream(InstanceId{2});
  seed_acks(m, {{1, 50.0}, {2, 100.0}});
  m.tick(SimTime{} + seconds(1));

  std::map<std::uint64_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[m.route(SimTime{} + seconds(1))->id.value()];
  }
  // Weights 2:1 by inverse latency.
  EXPECT_NEAR(double(counts[1]) / n, 2.0 / 3.0, 0.02);
  EXPECT_NEAR(double(counts[2]) / n, 1.0 / 3.0, 0.02);
}

TEST(SwarmManager, LrsExcludesStragglersAfterTick) {
  SwarmManager m{config_for(PolicyKind::kLRS), Rng{3}};
  for (std::uint64_t i = 1; i <= 4; ++i) m.add_downstream(InstanceId{i});
  seed_acks(m, {{1, 60.0}, {2, 70.0}, {3, 3000.0}, {4, 5000.0}});
  // Measured input rate ~24/s.
  SimTime t;
  for (int i = 0; i < 24; ++i) {
    t += millis(1000.0 / 24.0);
    m.on_tuple_in(t);
  }
  m.tick(t);
  // mu1 + mu2 = 16.7 + 14.3 = 31 >= 24: stragglers excluded.
  EXPECT_EQ(m.decision().selected.size(), 2u);

  // Outside probe bursts, tuples only go to the selected pair.
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 1000; ++i) ++counts[m.route(t)->id.value()];
  EXPECT_EQ(counts[3] + counts[4], 0);
}

TEST(SwarmManager, RrCyclesDeterministically) {
  SwarmManager m{config_for(PolicyKind::kRR), Rng{4}};
  for (std::uint64_t i = 1; i <= 3; ++i) m.add_downstream(InstanceId{i});
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 300; ++i) ++counts[m.route(SimTime{})->id.value()];
  EXPECT_EQ(counts[1], 100);
  EXPECT_EQ(counts[2], 100);
  EXPECT_EQ(counts[3], 100);
}

TEST(SwarmManager, ProbeBurstTouchesAllDownstreams) {
  SwarmManagerConfig config = config_for(PolicyKind::kLRS);
  config.probe_every_ticks = 2;
  SwarmManager m{config, Rng{5}};
  for (std::uint64_t i = 1; i <= 4; ++i) m.add_downstream(InstanceId{i});
  seed_acks(m, {{1, 50.0}, {2, 60.0}, {3, 4000.0}, {4, 6000.0}});
  m.tick(SimTime{} + seconds(1));
  ASSERT_FALSE(m.probing());
  m.tick(SimTime{} + seconds(2));  // Second tick triggers a probe burst.
  ASSERT_TRUE(m.probing());
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 4; ++i) {
    const auto choice = m.route(SimTime{} + seconds(2));
    EXPECT_TRUE(choice->probe);
    ++counts[choice->id.value()];
  }
  EXPECT_FALSE(m.probing());
  for (std::uint64_t i = 1; i <= 4; ++i) EXPECT_EQ(counts[i], 1);
}

TEST(SwarmManager, ProbingDisabledWhenConfiguredOff) {
  SwarmManagerConfig config = config_for(PolicyKind::kLRS);
  config.probe_every_ticks = 0;
  config.probe_unmeasured_every = 0;
  SwarmManager m{config, Rng{6}};
  m.add_downstream(InstanceId{1});
  m.add_downstream(InstanceId{2});
  seed_acks(m, {{1, 50.0}, {2, 50.0}});
  for (int t = 1; t <= 20; ++t) {
    m.tick(SimTime{} + seconds(t));
    EXPECT_FALSE(m.probing());
  }
}

TEST(SwarmManager, RrNeverProbes) {
  SwarmManagerConfig config = config_for(PolicyKind::kRR);
  config.probe_every_ticks = 1;
  SwarmManager m{config, Rng{7}};
  m.add_downstream(InstanceId{1});
  for (int t = 1; t <= 5; ++t) {
    m.tick(SimTime{} + seconds(t));
    EXPECT_FALSE(m.probing());
  }
}

TEST(SwarmManager, NewJoinerGetsBootstrapProbes) {
  SwarmManagerConfig config = config_for(PolicyKind::kLRS);
  config.probe_unmeasured_every = 8;
  SwarmManager m{config, Rng{8}};
  m.add_downstream(InstanceId{1});
  m.add_downstream(InstanceId{2});
  seed_acks(m, {{1, 50.0}, {2, 60.0}});
  m.tick(SimTime{} + seconds(1));

  m.add_downstream(InstanceId{3});  // Joins mid-run, unmeasured.
  int probes_to_3 = 0;
  for (int i = 0; i < 64; ++i) {
    const auto choice = m.route(SimTime{} + seconds(1));
    if (choice->id == InstanceId{3}) {
      EXPECT_TRUE(choice->probe);
      ++probes_to_3;
    }
  }
  EXPECT_EQ(probes_to_3, 8);  // Every 8th tuple.
}

TEST(SwarmManager, RemovedDownstreamNeverRouted) {
  SwarmManager m{config_for(PolicyKind::kLR), Rng{9}};
  m.add_downstream(InstanceId{1});
  m.add_downstream(InstanceId{2});
  seed_acks(m, {{1, 50.0}, {2, 50.0}});
  m.tick(SimTime{} + seconds(1));
  m.remove_downstream(InstanceId{2});
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(m.route(SimTime{} + seconds(1))->id, InstanceId{1});
  }
}

TEST(SwarmManager, InputRateMeasured) {
  SwarmManager m{config_for(PolicyKind::kLRS), Rng{10}};
  SimTime t;
  for (int i = 0; i < 48; ++i) {
    t += millis(1000.0 / 24.0);
    m.on_tuple_in(t);
  }
  EXPECT_NEAR(m.input_rate(t), 24.0, 1.5);
}

TEST(SwarmManager, SelectionRespondsToRate) {
  // At a low input rate LRS selects one worker; at a high rate, more.
  SwarmManagerConfig config = config_for(PolicyKind::kLRS);
  SwarmManager m{config, Rng{11}};
  for (std::uint64_t i = 1; i <= 3; ++i) m.add_downstream(InstanceId{i});
  seed_acks(m, {{1, 100.0}, {2, 100.0}, {3, 100.0}});  // mu = 10/s each.

  SimTime t;
  for (int i = 0; i < 5; ++i) {  // ~5/s input.
    t += millis(200);
    m.on_tuple_in(t);
  }
  m.tick(t);
  EXPECT_EQ(m.decision().selected.size(), 1u);

  for (int i = 0; i < 50; ++i) {  // Burst to ~25/s or more.
    t += millis(20);
    m.on_tuple_in(t);
  }
  m.tick(t);
  EXPECT_EQ(m.decision().selected.size(), 3u);
}

TEST(SwarmManager, RouteSelectedNeverProbes) {
  SwarmManagerConfig config = config_for(PolicyKind::kLRS);
  config.probe_every_ticks = 1;
  SwarmManager m{config, Rng{12}};
  m.add_downstream(InstanceId{1});
  m.add_downstream(InstanceId{2});
  seed_acks(m, {{1, 50.0}, {2, 5000.0}});
  SimTime t;
  for (int i = 0; i < 24; ++i) {
    t += millis(40);
    m.on_tuple_in(t);
  }
  m.tick(t);  // Triggers probe burst too.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*m.route_selected(t), InstanceId{1});
  }
}

TEST(SwarmManager, PolicyReported) {
  SwarmManager m{config_for(PolicyKind::kPRS), Rng{13}};
  EXPECT_EQ(m.policy(), PolicyKind::kPRS);
}

}  // namespace
}  // namespace swing::core
