#include "core/policy.h"

#include <gtest/gtest.h>

#include <numeric>

namespace swing::core {
namespace {

DownstreamInfo info(std::uint64_t id, double latency_ms,
                    double processing_ms) {
  return DownstreamInfo{InstanceId{id}, latency_ms, processing_ms};
}

TEST(PolicyNames, RoundTrip) {
  for (PolicyKind kind : kAllPolicies) {
    EXPECT_EQ(policy_from_name(policy_name(kind)), kind);
  }
}

TEST(PolicyNames, CaseInsensitive) {
  EXPECT_EQ(policy_from_name("lrs"), PolicyKind::kLRS);
  EXPECT_EQ(policy_from_name("rr"), PolicyKind::kRR);
}

TEST(PolicyNames, UnknownThrows) {
  EXPECT_THROW(static_cast<void>(policy_from_name("xyz")),
               std::invalid_argument);
}

TEST(PolicyTraits, SelectionAndLatencyFlags) {
  EXPECT_FALSE(policy_uses_selection(PolicyKind::kRR));
  EXPECT_FALSE(policy_uses_selection(PolicyKind::kPR));
  EXPECT_FALSE(policy_uses_selection(PolicyKind::kLR));
  EXPECT_TRUE(policy_uses_selection(PolicyKind::kPRS));
  EXPECT_TRUE(policy_uses_selection(PolicyKind::kLRS));
  EXPECT_TRUE(policy_uses_latency(PolicyKind::kLR));
  EXPECT_TRUE(policy_uses_latency(PolicyKind::kLRS));
  EXPECT_FALSE(policy_uses_latency(PolicyKind::kPR));
  EXPECT_FALSE(policy_uses_latency(PolicyKind::kPRS));
}

// --- Worker Selection (paper §V-A) ----------------------------------------

TEST(WorkerSelection, PicksMinimumPrefix) {
  // mu = 1000/L: 20/s, 10/s, 5/s. Target 25/s needs the first two.
  const std::vector<DownstreamInfo> downs = {
      info(1, 50.0, 50.0), info(2, 100.0, 100.0), info(3, 200.0, 200.0)};
  const auto selected = select_workers(downs, 25.0, /*by_latency=*/true);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].id, InstanceId{1});
  EXPECT_EQ(selected[1].id, InstanceId{2});
}

TEST(WorkerSelection, SingleFastWorkerSuffices) {
  const std::vector<DownstreamInfo> downs = {
      info(1, 10.0, 10.0), info(2, 100.0, 100.0)};
  const auto selected = select_workers(downs, 50.0, true);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].id, InstanceId{1});
}

TEST(WorkerSelection, InfeasibleSelectsAll) {
  const std::vector<DownstreamInfo> downs = {
      info(1, 100.0, 100.0), info(2, 100.0, 100.0)};
  // Sum rate = 20/s < 1000/s target: use everything (paper rule).
  const auto selected = select_workers(downs, 1000.0, true);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(WorkerSelection, SortsByDelayAscending) {
  const std::vector<DownstreamInfo> downs = {
      info(1, 300.0, 1.0), info(2, 100.0, 1.0), info(3, 200.0, 1.0)};
  const auto selected = select_workers(downs, 1e9, true);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].id, InstanceId{2});
  EXPECT_EQ(selected[1].id, InstanceId{3});
  EXPECT_EQ(selected[2].id, InstanceId{1});
}

TEST(WorkerSelection, ByProcessingUsesProcessingDelay) {
  // Latency ordering and processing ordering disagree.
  const std::vector<DownstreamInfo> downs = {
      info(1, 50.0, 200.0), info(2, 500.0, 40.0)};
  const auto by_latency = select_workers(downs, 1.0, true);
  const auto by_processing = select_workers(downs, 1.0, false);
  EXPECT_EQ(by_latency[0].id, InstanceId{1});
  EXPECT_EQ(by_processing[0].id, InstanceId{2});
}

TEST(WorkerSelection, ZeroRateSelectsOne) {
  const std::vector<DownstreamInfo> downs = {
      info(1, 50.0, 50.0), info(2, 60.0, 60.0)};
  const auto selected = select_workers(downs, 0.0, true);
  EXPECT_EQ(selected.size(), 1u);
}

TEST(WorkerSelection, HeadroomScalesTarget) {
  // mu = 20/s each. Target 30 needs 2; with headroom 2.0 it needs 3.
  const std::vector<DownstreamInfo> downs = {
      info(1, 50.0, 1.0), info(2, 50.0, 1.0), info(3, 50.0, 1.0)};
  EXPECT_EQ(select_workers(downs, 30.0, true, 1.0).size(), 2u);
  EXPECT_EQ(select_workers(downs, 30.0, true, 2.0).size(), 3u);
}

TEST(WorkerSelection, EmptyInput) {
  EXPECT_TRUE(select_workers({}, 10.0, true).empty());
}

// --- Weights (paper §V-A Data Routing) -------------------------------------

TEST(Weights, ProportionalToInverseLatency) {
  const std::vector<DownstreamInfo> downs = {info(1, 100.0, 1.0),
                                             info(2, 200.0, 1.0)};
  const auto w = inverse_delay_weights(downs, true);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(w[1], 1.0 / 3.0, 1e-12);
}

TEST(Weights, SumToOne) {
  const std::vector<DownstreamInfo> downs = {
      info(1, 70.0, 1.0), info(2, 130.0, 1.0), info(3, 460.0, 1.0),
      info(4, 90.0, 1.0)};
  const auto w = inverse_delay_weights(downs, true);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12);
}

TEST(Weights, ZeroDelayGuarded) {
  const std::vector<DownstreamInfo> downs = {info(1, 0.0, 0.0),
                                             info(2, 100.0, 100.0)};
  const auto w = inverse_delay_weights(downs, true);
  EXPECT_GT(w[0], 0.99);  // Treated as extremely fast, not a div-by-zero.
}

// --- Full policies, parameterized -------------------------------------------

class PolicyTest : public ::testing::TestWithParam<PolicyKind> {
 protected:
  std::unique_ptr<RoutingPolicy> policy_ =
      RoutingPolicy::make(GetParam());
};

TEST_P(PolicyTest, EmptyDownstreamsGivesEmptyDecision) {
  const auto d = policy_->decide({}, 24.0);
  EXPECT_TRUE(d.selected.empty());
}

TEST_P(PolicyTest, WeightsAlignWithSelection) {
  const std::vector<DownstreamInfo> downs = {
      info(1, 70.0, 46.0), info(2, 130.0, 93.0), info(3, 460.0, 302.0)};
  const auto d = policy_->decide(downs, 24.0);
  EXPECT_EQ(d.selected.size(), d.weights.size());
  EXPECT_FALSE(d.selected.empty());
}

TEST_P(PolicyTest, WeightsNormalised) {
  const std::vector<DownstreamInfo> downs = {
      info(1, 70.0, 46.0), info(2, 130.0, 93.0), info(3, 460.0, 302.0),
      info(4, 80.0, 55.0)};
  const auto d = policy_->decide(downs, 24.0);
  EXPECT_NEAR(std::accumulate(d.weights.begin(), d.weights.end(), 0.0), 1.0,
              1e-9);
}

TEST_P(PolicyTest, SelectionSubsetOfDownstreams) {
  const std::vector<DownstreamInfo> downs = {
      info(1, 70.0, 46.0), info(2, 130.0, 93.0), info(3, 460.0, 302.0)};
  const auto d = policy_->decide(downs, 24.0);
  for (InstanceId id : d.selected) {
    EXPECT_TRUE(id == InstanceId{1} || id == InstanceId{2} ||
                id == InstanceId{3});
  }
}

TEST_P(PolicyTest, KindReported) {
  EXPECT_EQ(policy_->kind(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& i) { return policy_name(i.param); });

TEST(RRPolicy, SelectsAllEqually) {
  const auto policy = RoutingPolicy::make(PolicyKind::kRR);
  const std::vector<DownstreamInfo> downs = {
      info(1, 10.0, 10.0), info(2, 1000.0, 1000.0)};
  const auto d = policy->decide(downs, 24.0);
  EXPECT_TRUE(d.round_robin);
  EXPECT_EQ(d.selected.size(), 2u);
  EXPECT_DOUBLE_EQ(d.weights[0], d.weights[1]);
}

TEST(LRSPolicy, SelectsSubsetAndWeightsByLatency) {
  const auto policy = RoutingPolicy::make(PolicyKind::kLRS);
  // Two fast units satisfy 24/s; the slow ones must be excluded.
  const std::vector<DownstreamInfo> downs = {
      info(1, 70.0, 46.0), info(2, 80.0, 50.0), info(3, 2000.0, 300.0),
      info(4, 5000.0, 460.0)};
  const auto d = policy->decide(downs, 24.0);
  ASSERT_EQ(d.selected.size(), 2u);
  EXPECT_FALSE(d.round_robin);
  EXPECT_EQ(d.selected[0], InstanceId{1});
  EXPECT_GT(d.weights[0], d.weights[1]);
}

TEST(LRPolicy, UsesAllDownstreams) {
  const auto policy = RoutingPolicy::make(PolicyKind::kLR);
  const std::vector<DownstreamInfo> downs = {
      info(1, 70.0, 46.0), info(2, 80.0, 50.0), info(3, 2000.0, 300.0)};
  const auto d = policy->decide(downs, 24.0);
  EXPECT_EQ(d.selected.size(), 3u);
}

TEST(PRSPolicy, BlindToNetworkLatency) {
  const auto policy = RoutingPolicy::make(PolicyKind::kPRS);
  // Unit 1: terrible latency (weak signal) but fast processor. PRS must
  // still pick it first — that is its paper-documented failure mode.
  const std::vector<DownstreamInfo> downs = {
      info(1, 3000.0, 40.0), info(2, 90.0, 80.0), info(3, 100.0, 90.0)};
  const auto d = policy->decide(downs, 24.0);
  ASSERT_FALSE(d.selected.empty());
  EXPECT_EQ(d.selected[0], InstanceId{1});
}

TEST(PRPolicy, WeightsByProcessingOnly) {
  const auto policy = RoutingPolicy::make(PolicyKind::kPR);
  const std::vector<DownstreamInfo> downs = {
      info(1, 5000.0, 50.0), info(2, 50.0, 100.0)};
  const auto d = policy->decide(downs, 24.0);
  ASSERT_EQ(d.selected.size(), 2u);
  // Unit 1 has half the processing delay, so twice the weight — despite
  // its 100x worse latency.
  const std::size_t i1 = d.selected[0] == InstanceId{1} ? 0 : 1;
  EXPECT_NEAR(d.weights[i1], 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace swing::core
