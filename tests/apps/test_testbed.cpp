#include "apps/testbed.h"

#include <gtest/gtest.h>

#include "apps/face_recognition.h"

namespace swing::apps {
namespace {

TEST(Testbed, BuildsNineDevices) {
  Testbed bed;
  EXPECT_NO_THROW(static_cast<void>(bed.id("A")));
  EXPECT_NO_THROW(static_cast<void>(bed.id("I")));
  EXPECT_THROW(static_cast<void>(bed.id("Z")), std::out_of_range);
  EXPECT_EQ(bed.worker_names().size(), 8u);
}

TEST(Testbed, WeakSignalPlacement) {
  Testbed bed;
  auto& medium = bed.swarm().medium();
  EXPECT_DOUBLE_EQ(medium.rssi(bed.id("B")), bed.config().weak_rssi_dbm);
  EXPECT_DOUBLE_EQ(medium.rssi(bed.id("C")), bed.config().weak_rssi_dbm);
  EXPECT_DOUBLE_EQ(medium.rssi(bed.id("D")), bed.config().weak_rssi_dbm);
  EXPECT_DOUBLE_EQ(medium.rssi(bed.id("H")), bed.config().strong_rssi_dbm);
}

TEST(Testbed, StrongOnlyPlacementOption) {
  TestbedConfig config;
  config.weak_signal_bcd = false;
  Testbed bed{config};
  EXPECT_DOUBLE_EQ(bed.swarm().medium().rssi(bed.id("B")),
                   config.strong_rssi_dbm);
}

TEST(Testbed, SubsetOfWorkers) {
  TestbedConfig config;
  config.workers = {"B", "G"};
  Testbed bed{config};
  EXPECT_NO_THROW(static_cast<void>(bed.id("B")));
  EXPECT_THROW(static_cast<void>(bed.id("H")), std::out_of_range);
}

TEST(Testbed, LaunchDeploysAndStarts) {
  TestbedConfig config;
  config.workers = {"G", "H"};
  Testbed bed{config};
  bed.launch(face_recognition_graph());
  EXPECT_EQ(bed.swarm().master()->member_count(), 3u);  // A + 2 workers.
  EXPECT_TRUE(bed.swarm().master()->started());
  bed.run(seconds(5));
  EXPECT_GT(bed.swarm().metrics().frames_arrived(), 50u);
}

TEST(Testbed, PolicyConfigApplied) {
  TestbedConfig config;
  config.policy = core::PolicyKind::kRR;
  config.workers = {"G"};
  Testbed bed{config};
  bed.launch(face_recognition_graph());
  const auto* manager = bed.swarm().worker(bed.id("A"))->manager_of(
      bed.swarm().graph().sources()[0]);
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->policy(), core::PolicyKind::kRR);
}

}  // namespace
}  // namespace swing::apps
