#include "apps/voice_translation.h"

#include <gtest/gtest.h>

#include <sstream>

#include "device/profile.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

namespace swing::apps {
namespace {

TEST(SpeechRecognition, Deterministic) {
  EXPECT_EQ(recognize_speech(7), recognize_speech(7));
}

TEST(SpeechRecognition, VariesWithContent) {
  bool any_diff = false;
  for (std::uint64_t tag = 1; tag < 20; ++tag) {
    if (recognize_speech(tag) != recognize_speech(0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SpeechRecognition, ProducesGrammaticalTemplate) {
  for (std::uint64_t tag = 0; tag < 50; ++tag) {
    const std::string phrase = recognize_speech(tag);
    std::istringstream in{phrase};
    std::vector<std::string> words;
    for (std::string w; in >> w;) words.push_back(w);
    ASSERT_GE(words.size(), 4u) << phrase;
    EXPECT_EQ(words[0], "the");
  }
}

TEST(Translation, DictionaryLookup) {
  EXPECT_EQ(translate_to_spanish("the dog runs"), "el perro corre");
  EXPECT_EQ(translate_to_spanish("water"), "agua");
}

TEST(Translation, AdjectiveNounReordering) {
  // English "red house" -> Spanish "casa rojo" (noun before adjective).
  EXPECT_EQ(translate_to_spanish("the red house"), "el casa rojo");
}

TEST(Translation, PluralSuffixRule) {
  EXPECT_EQ(translate_to_spanish("dogs"), "perros");     // Vowel + s.
  EXPECT_EQ(translate_to_spanish("cats"), "gatos");
}

TEST(Translation, UnknownWordBracketed) {
  EXPECT_EQ(translate_to_spanish("xylophone"), "[xylophone]");
}

TEST(Translation, EmptyString) {
  EXPECT_EQ(translate_to_spanish(""), "");
}

TEST(Translation, RoundTripThroughRecognizer) {
  // Every phrase the recognizer can produce must translate with no
  // untranslated brackets.
  for (std::uint64_t tag = 0; tag < 200; ++tag) {
    const std::string es = translate_to_spanish(recognize_speech(tag));
    EXPECT_EQ(es.find('['), std::string::npos) << es;
  }
}

TEST(Graph, FourFunctionUnits) {
  const auto g = voice_translation_graph();
  EXPECT_EQ(g.operators().size(), 4u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, AudioFrameHasPaperSize) {
  const auto g = voice_translation_graph();
  Rng rng{1};
  const auto tuple =
      g.op(g.sources()[0]).source->generate(TupleId{3}, SimTime{}, rng);
  const auto* audio = tuple.get_as<dataflow::Blob>("audio");
  ASSERT_NE(audio, nullptr);
  EXPECT_EQ(audio->size, 72000u);  // 72.0 kB per the paper.
}

TEST(Pipeline, EndToEndTranslation) {
  Simulator sim;
  runtime::Swarm swarm{sim};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});
  const auto c = swarm.add_device(device::profile_I(), {2.5, 0.0});

  VoiceTranslationConfig config;
  config.fps = 4.0;  // Two workers can sustain this.
  config.max_frames = 20;
  swarm.launch_master(a, voice_translation_graph(config));
  swarm.launch_worker(b);
  swarm.launch_worker(c);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(20));
  swarm.shutdown();

  EXPECT_EQ(swarm.metrics().frames_arrived(), 20u);
}

}  // namespace
}  // namespace swing::apps
