#include "apps/gesture_recognition.h"

#include "dataflow/codec.h"

#include <gtest/gtest.h>

#include <map>

#include "device/profile.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

namespace swing::apps {
namespace {

std::vector<AccelSample> window_for(std::uint64_t window_index,
                                    std::size_t n = 25) {
  std::vector<AccelSample> window;
  for (std::size_t i = 0; i < n; ++i) {
    window.push_back(synth_sample(window_index * n + i, n));
  }
  return window;
}

TEST(GestureSynth, Deterministic) {
  const AccelSample a = synth_sample(123, 25);
  const AccelSample b = synth_sample(123, 25);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.z, b.z);
}

TEST(GestureSynth, StillIsNearGravity) {
  for (const auto& s : window_for(0)) {  // Window 0: "still".
    EXPECT_NEAR(s.z, 9.81f, 0.5f);
    EXPECT_NEAR(s.x, 0.0f, 0.5f);
  }
}

TEST(GestureFeaturesTest, RoundTripSerialization) {
  GestureFeatures f;
  f.mean_magnitude = 9.9f;
  f.variance = 1.5f;
  f.energy = 4.25f;
  f.dominant_axis = 2.0f;
  const GestureFeatures back =
      dataflow::decode_from<GestureFeatures>(dataflow::encode_to_bytes(f));
  EXPECT_EQ(back.mean_magnitude, f.mean_magnitude);
  EXPECT_EQ(back.variance, f.variance);
  EXPECT_EQ(back.energy, f.energy);
  EXPECT_EQ(back.dominant_axis, f.dominant_axis);
}

TEST(GestureFeaturesTest, EmptyWindowSafe) {
  const GestureFeatures f = extract_features({});
  EXPECT_EQ(f.mean_magnitude, 0.0f);
}

TEST(GestureClassifier, RecognisesEveryTrueGesture) {
  // Windows 0..15 cycle through still/shake/tilt/circle (4 windows each);
  // the classifier must label every window correctly.
  for (std::uint64_t w = 0; w < 16; ++w) {
    const auto features = extract_features(window_for(w));
    EXPECT_EQ(classify_gesture(features), true_gesture(w))
        << "window " << w << " energy " << features.energy << " var "
        << features.variance << " axis " << features.dominant_axis;
  }
}

TEST(GestureGraph, WindowerPinnedToMaster) {
  const auto g = gesture_recognition_graph();
  EXPECT_NO_THROW(g.validate());
  for (const auto& op : g.operators()) {
    if (op.name == "windower") {
      EXPECT_EQ(op.placement, dataflow::Placement::kMaster);
    }
    if (op.name == "classifier") {
      EXPECT_EQ(op.placement, dataflow::Placement::kWorkers);
    }
  }
}

TEST(GestureGraph, OnlyTransformsCanBeReplaced) {
  dataflow::AppGraph g = gesture_recognition_graph();
  EXPECT_THROW(g.place_on_master(g.sources()[0]), dataflow::GraphError);
  EXPECT_THROW(g.place_on_master(g.sinks()[0]), dataflow::GraphError);
}

TEST(GesturePipeline, EndToEndClassification) {
  Simulator sim;
  runtime::Swarm swarm{sim};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});

  GestureConfig config;
  config.max_samples = 800;  // 16 seconds -> 32 windows.
  swarm.launch_master(a, gesture_recognition_graph(config));
  swarm.launch_worker(b);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(25));
  swarm.shutdown();

  // 800 samples / 25 per window = 32 classified gestures at the sink.
  EXPECT_EQ(swarm.metrics().frames_arrived(), 32u);
}

TEST(GesturePipeline, WindowingReducesNetworkLoad) {
  // Only 2 Hz of feature tuples cross the air, not 50 Hz of samples: the
  // worker receives ~1/25th of the tuple count the master's windower sees.
  Simulator sim;
  runtime::Swarm swarm{sim};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});
  swarm.launch_master(a, gesture_recognition_graph());
  swarm.launch_worker(b);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(20));

  const auto to_worker = swarm.metrics().device(b).frames_in;
  const auto to_master = swarm.metrics().device(a).frames_in;
  // Master receives the 50 Hz sample stream (loopback) + results; the
  // worker only the 2 Hz windows.
  EXPECT_LT(to_worker, 60u);
  EXPECT_GT(to_master, 900u);
}

}  // namespace
}  // namespace swing::apps
