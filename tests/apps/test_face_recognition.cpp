#include "apps/face_recognition.h"

#include <gtest/gtest.h>

#include <cmath>

#include "device/profile.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

namespace swing::apps {
namespace {

TEST(FaceEmbedding, Deterministic) {
  EXPECT_EQ(face_embedding(42), face_embedding(42));
  EXPECT_NE(face_embedding(42), face_embedding(43));
}

TEST(FaceEmbedding, UnitNorm) {
  for (std::uint64_t tag : {0ULL, 1ULL, 99ULL, 123456ULL}) {
    const auto e = face_embedding(tag);
    double norm = 0.0;
    for (float x : e) norm += double(x) * double(x);
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

TEST(FaceGallery, RequestedSize) {
  EXPECT_EQ(face_gallery(5).size(), 5u);
  EXPECT_EQ(face_gallery(64).size(), 64u);
}

TEST(FaceGallery, NamesUnique) {
  const auto gallery = face_gallery(64);
  for (std::size_t i = 0; i < gallery.size(); ++i) {
    for (std::size_t j = i + 1; j < gallery.size(); ++j) {
      EXPECT_NE(gallery[i], gallery[j]);
    }
  }
}

TEST(MatchFace, ExactMatchWins) {
  std::vector<Embedding> gallery;
  for (std::uint64_t i = 0; i < 8; ++i) {
    gallery.push_back(face_embedding(100 + i));
  }
  for (std::size_t i = 0; i < gallery.size(); ++i) {
    EXPECT_EQ(match_face(face_embedding(100 + i), gallery), i);
  }
}

TEST(Graph, FourFunctionUnits) {
  const auto g = face_recognition_graph();
  EXPECT_EQ(g.operators().size(), 4u);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(Graph, CostsMatchTableOneReference) {
  FaceRecognitionConfig config;
  const auto g = face_recognition_graph(config);
  double total = 0.0;
  dataflow::Tuple t;
  for (const auto& op : g.operators()) {
    if (op.cost) total += op.cost(t);
  }
  // Detector + recognizer = 92.9 ms on the reference Galaxy Nexus.
  EXPECT_NEAR(total, 92.9, 0.1);
}

TEST(Graph, SourceRateIs24Fps) {
  const auto g = face_recognition_graph();
  EXPECT_DOUBLE_EQ(g.op(g.sources()[0]).source->rate_per_s, 24.0);
}

TEST(Graph, FrameBlobHasPaperSize) {
  const auto g = face_recognition_graph();
  Rng rng{1};
  const auto tuple =
      g.op(g.sources()[0]).source->generate(TupleId{0}, SimTime{}, rng);
  const auto* frame = tuple.get_as<dataflow::Blob>("frame");
  ASSERT_NE(frame, nullptr);
  EXPECT_EQ(frame->size, 6000u);  // 400x226 ~ 6.0 kB.
}

TEST(Pipeline, EndToEndRecognisesNames) {
  Simulator sim;
  runtime::Swarm swarm{sim};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});

  FaceRecognitionConfig config;
  config.fps = 12.0;  // Within H's single-device capacity (~14 FPS).
  config.max_frames = 48;
  swarm.launch_master(a, face_recognition_graph(config));
  swarm.launch_worker(b);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(15));
  swarm.shutdown();

  EXPECT_EQ(swarm.metrics().frames_arrived(), 48u);
}

TEST(Pipeline, SingleDeviceMatchesTableOneThroughput) {
  // Table I: H processes ~13-14 FPS when fed 24 FPS.
  Simulator sim;
  runtime::Swarm swarm{sim};
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto b = swarm.add_device(device::profile_H(), {2.0, 0.0});
  swarm.launch_master(a, face_recognition_graph());
  swarm.launch_worker(b);
  sim.run_for(seconds(1));
  swarm.start();
  sim.run_for(seconds(30));
  const auto t = sim.now();
  const double fps = swarm.metrics().throughput_fps(t - seconds(20), t);
  EXPECT_NEAR(fps, 14.0, 1.5);
}

}  // namespace
}  // namespace swing::apps
