// Scene analysis exercises fan-out (one tuple to two downstream operators)
// and fan-in (a stateful join) — graph shapes the two paper apps don't use.
#include "apps/scene_analysis.h"

#include <gtest/gtest.h>

#include <set>

#include "device/profile.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

namespace swing::apps {
namespace {

TEST(SceneGraph, DiamondShapeValidates) {
  const auto g = scene_analysis_graph();
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.operators().size(), 5u);
  // The camera fans out to two operators.
  EXPECT_EQ(g.downstreams(g.sources()[0]).size(), 2u);
  // The fusion unit has two upstreams and is id-partitioned so both
  // halves of a frame land on the same instance.
  for (const auto& op : g.operators()) {
    if (op.name == "fusion") {
      EXPECT_EQ(g.upstreams(op.id).size(), 2u);
      EXPECT_TRUE(op.partition_by_id);
    }
  }
}

TEST(SceneGraph, PartitioningRejectedForSourcesAndSinks) {
  dataflow::AppGraph g = scene_analysis_graph();
  EXPECT_THROW(g.partition_by_id(g.sources()[0]), dataflow::GraphError);
  EXPECT_THROW(g.partition_by_id(g.sinks()[0]), dataflow::GraphError);
}

TEST(SceneGraph, DetectObjectDeterministic) {
  EXPECT_EQ(detect_object(5), detect_object(5));
  bool varies = false;
  for (std::uint64_t t = 0; t < 16; ++t) {
    if (detect_object(t) != detect_object(0)) varies = true;
  }
  EXPECT_TRUE(varies);
}

class ScenePipeline : public ::testing::Test {
 protected:
  void run(double fps, std::uint64_t frames, double for_seconds) {
    a_ = swarm_.add_device(device::profile_A(), {1.0, 0.0});
    b_ = swarm_.add_device(device::profile_H(), {2.0, 0.0});
    c_ = swarm_.add_device(device::profile_I(), {2.5, 0.0});
    SceneAnalysisConfig config;
    config.fps = fps;
    config.max_frames = frames;
    swarm_.launch_master(a_, scene_analysis_graph(config));
    swarm_.launch_worker(b_);
    swarm_.launch_worker(c_);
    sim_.run_for(seconds(1));
    swarm_.start();
    sim_.run_for(seconds(for_seconds));
    swarm_.shutdown();
  }

  Simulator sim_;
  runtime::Swarm swarm_{sim_};
  DeviceId a_, b_, c_;
};

TEST_F(ScenePipeline, EveryFrameFusedExactlyOnce) {
  run(8.0, 64, 20.0);
  // One fused scene per frame — no duplicates, no halves leaking through.
  EXPECT_EQ(swarm_.metrics().frames_arrived(), 64u);
  std::set<std::uint64_t> seen;
  for (const auto& f : swarm_.metrics().frames()) {
    EXPECT_TRUE(seen.insert(f.id.value()).second)
        << "duplicate fused frame " << f.id;
  }
}

TEST_F(ScenePipeline, FanOutUsesPerEdgeManagers) {
  run(8.0, 0, 10.0);
  const auto& g = swarm_.graph();
  const auto camera = g.sources()[0];
  const auto downs = g.downstreams(camera);
  ASSERT_EQ(downs.size(), 2u);
  const auto* worker = swarm_.worker(a_);
  const auto* m1 = worker->manager_of(camera, downs[0]);
  const auto* m2 = worker->manager_of(camera, downs[1]);
  ASSERT_NE(m1, nullptr);
  ASSERT_NE(m2, nullptr);
  EXPECT_NE(m1, m2);
  // Both edges carried the full stream.
  EXPECT_GT(m1->routed_tuples(), 50u);
  EXPECT_GT(m2->routed_tuples(), 50u);
}

TEST_F(ScenePipeline, LatencyIncludesSlowestBranch) {
  run(8.0, 32, 15.0);
  // Scene latency is gated by the slower (object) branch: >= ~75 ms of
  // compute even on the fastest device.
  const auto stats = swarm_.metrics().latency_stats();
  ASSERT_GT(stats.count(), 0u);
  EXPECT_GT(stats.mean(), 55.0);
}


TEST_F(ScenePipeline, PartitionedFusionSpreadsAcrossDevices) {
  // With two workers, fusion instances exist on both; id-partitioning must
  // split frames ~evenly between them while every frame still joins.
  run(8.0, 80, 20.0);
  EXPECT_EQ(swarm_.metrics().frames_arrived(), 80u);
  const auto* worker_b = swarm_.worker(b_);
  const auto* worker_c = swarm_.worker(c_);
  ASSERT_NE(worker_b, nullptr);
  ASSERT_NE(worker_c, nullptr);
  // Both devices processed fusion work: each worker ran tuples beyond its
  // two branch stages (branches + fusion shares).
  EXPECT_GT(worker_b->tuples_processed(), 60u);
  EXPECT_GT(worker_c->tuples_processed(), 60u);
}

TEST(SceneFusion, BoundedStateUnderHalfLoss) {
  // Feed the fusion unit one half only, many times: memory must stay
  // bounded by the join window and nothing is emitted.
  SceneAnalysisConfig config;
  config.join_window = 16;
  const auto g = scene_analysis_graph(config);
  const dataflow::OperatorDecl* fusion = nullptr;
  for (const auto& op : g.operators()) {
    if (op.name == "fusion") fusion = &op;
  }
  ASSERT_NE(fusion, nullptr);
  auto unit = fusion->factory();

  struct CaptureCtx final : dataflow::Context {
    void emit(dataflow::Tuple t) override { out.push_back(std::move(t)); }
    SimTime now() const override { return SimTime{}; }
    DeviceId device() const override { return DeviceId{0}; }
    InstanceId instance() const override { return InstanceId{0}; }
    Rng& rng() override { return rng_; }
    std::vector<dataflow::Tuple> out;
    Rng rng_{1};
  } ctx;

  for (std::uint64_t i = 0; i < 1000; ++i) {
    dataflow::Tuple half{TupleId{i}, SimTime{}};
    half.set("face_label", std::string{"alice"});
    unit->process(half, ctx);
  }
  EXPECT_TRUE(ctx.out.empty());

  // An old frame's sibling arrives after eviction: still nothing (the
  // half was dropped), but a *recent* frame's sibling fuses fine.
  dataflow::Tuple stale{TupleId{0}, SimTime{}};
  stale.set("object_label", std::string{"laptop"});
  unit->process(stale, ctx);
  EXPECT_TRUE(ctx.out.empty());  // Sibling was evicted long ago.
  ctx.out.clear();

  dataflow::Tuple recent{TupleId{999}, SimTime{}};
  recent.set("object_label", std::string{"laptop"});
  unit->process(recent, ctx);
  ASSERT_EQ(ctx.out.size(), 1u);
  const auto* scene = ctx.out[0].get_as<std::string>("scene");
  ASSERT_NE(scene, nullptr);
  EXPECT_EQ(*scene, "alice with a laptop");
}

}  // namespace
}  // namespace swing::apps
