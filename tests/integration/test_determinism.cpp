// Integration: swing-audit end-to-end. Same-seed runs must fold identical
// event-stream digests (simulator and ledger), and a stopped + drained
// swarm must conserve every emitted tuple.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "apps/face_recognition.h"
#include "apps/gesture_recognition.h"
#include "apps/testbed.h"

namespace swing {
namespace {

using apps::Testbed;
using apps::TestbedConfig;

struct RunDigests {
  std::uint64_t sim = 0;
  std::uint64_t ledger = 0;
  std::uint64_t ledger_events = 0;
  core::AuditReport report;
};

RunDigests run_face_recognition(std::uint64_t seed, double run_s = 15.0) {
  TestbedConfig config;
  config.seed = seed;
  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(run_s));
  RunDigests d;
  d.sim = bed.sim().digest();
  d.ledger = bed.swarm().ledger().digest();
  d.ledger_events = bed.swarm().ledger().events();
  d.report = bed.swarm().audit();
  return d;
}

TEST(Determinism, SameSeedSameDigests) {
  const RunDigests a = run_face_recognition(42);
  const RunDigests b = run_face_recognition(42);
  EXPECT_EQ(a.sim, b.sim);
  EXPECT_EQ(a.ledger, b.ledger);
  EXPECT_EQ(a.ledger_events, b.ledger_events);
  EXPECT_GT(a.ledger_events, 0u) << "auditor saw no events — not wired up?";
}

TEST(Determinism, DifferentSeedDifferentDigests) {
  const RunDigests a = run_face_recognition(42);
  const RunDigests b = run_face_recognition(43);
  // A 64-bit FNV collision between two short runs would be astronomical;
  // equality here means the seed never reached the event stream.
  EXPECT_NE(a.ledger, b.ledger);
}

TEST(Determinism, MidRunAuditIsClean) {
  const RunDigests a = run_face_recognition(7);
  EXPECT_TRUE(a.report.ok()) << a.report.summary();
  EXPECT_GT(a.report.emitted, 0u);
  EXPECT_GT(a.report.delivered, 0u);
  EXPECT_GT(a.report.latency_samples, 0u);
}

TEST(Determinism, StoppedAndDrainedSwarmConserves) {
  TestbedConfig config;
  config.seed = 42;
  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));
  bed.swarm().stop();
  bed.run(seconds(5));  // Drain: everything in flight lands or drops.
  const core::AuditReport report = bed.swarm().audit();
  EXPECT_TRUE(report.conserved()) << report.summary();
  EXPECT_GT(report.emitted, 0u);
  EXPECT_EQ(report.in_flight_residual, 0u);
}

TEST(Determinism, CheckpointingKeepsSameSeedByteIdentical) {
  // swing-state: the checkpoint service rides the sim clock, so turning it
  // on must not break replay — two same-seed checkpointed runs agree on
  // digests, registry snapshot included (checkpoints_taken et al.).
  const auto run = [](std::uint64_t seed) {
    TestbedConfig config;
    config.seed = seed;
    config.workers = {"B", "C", "D"};
    config.swarm.with_recovery().with_checkpointing(seconds(0.5));
    Testbed bed{config};
    bed.launch(apps::face_recognition_graph());
    bed.run(seconds(12.0));
    return std::tuple{bed.sim().digest(), bed.swarm().ledger().digest(),
                      bed.swarm().registry().snapshot().dump()};
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

TEST(Determinism, GestureWindowingConserves) {
  // The gesture windower absorbs 25 samples per emitted window and mints
  // colliding window ids — the hardest case for the conservation buckets.
  TestbedConfig config;
  config.seed = 5;
  Testbed bed{config};
  bed.launch(apps::gesture_recognition_graph());
  bed.run(seconds(10));
  bed.swarm().stop();
  bed.run(seconds(5));
  const core::AuditReport report = bed.swarm().audit();
  EXPECT_TRUE(report.conserved()) << report.summary();
  EXPECT_GT(report.consumed, 0u) << "windower absorption not recorded";
  EXPECT_GT(report.reemissions, 0u) << "window reemission not recorded";
}

}  // namespace
}  // namespace swing
