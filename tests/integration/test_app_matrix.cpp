// The app x policy matrix: every bundled sensing app under every routing
// policy on a small swarm, checking the universal invariants — frames
// deliver, nothing duplicates, playback stays ordered, the run is
// deterministic-safe. Catches app/policy interactions no single-scenario
// test would.
#include <gtest/gtest.h>

#include <set>

#include "apps/face_recognition.h"
#include "apps/gesture_recognition.h"
#include "apps/scene_analysis.h"
#include "apps/testbed.h"
#include "apps/voice_translation.h"

namespace swing {
namespace {

enum class AppKind { kFace, kVoice, kScene, kGesture };

const char* app_name(AppKind app) {
  switch (app) {
    case AppKind::kFace:    return "Face";
    case AppKind::kVoice:   return "Voice";
    case AppKind::kScene:   return "Scene";
    case AppKind::kGesture: return "Gesture";
  }
  return "?";
}

dataflow::AppGraph make_graph(AppKind app) {
  switch (app) {
    case AppKind::kFace: {
      apps::FaceRecognitionConfig c;
      c.fps = 12.0;
      return apps::face_recognition_graph(c);
    }
    case AppKind::kVoice: {
      apps::VoiceTranslationConfig c;
      c.fps = 4.0;
      return apps::voice_translation_graph(c);
    }
    case AppKind::kScene: {
      apps::SceneAnalysisConfig c;
      c.fps = 8.0;
      return apps::scene_analysis_graph(c);
    }
    case AppKind::kGesture:
      return apps::gesture_recognition_graph();
  }
  throw std::logic_error("unreachable");
}

// Expected sink tuples per second for each app (gesture emits one window
// per 25 samples).
double expected_rate(AppKind app) {
  switch (app) {
    case AppKind::kFace:    return 12.0;
    case AppKind::kVoice:   return 4.0;
    case AppKind::kScene:   return 8.0;
    case AppKind::kGesture: return 2.0;
  }
  return 0.0;
}

using MatrixParam = std::tuple<AppKind, core::PolicyKind>;

class AppMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(AppMatrixTest, DeliversOrderedUniqueFrames) {
  const auto [app, policy] = GetParam();
  apps::TestbedConfig config;
  config.policy = policy;
  config.workers = {"G", "H", "I"};
  config.weak_signal_bcd = false;
  apps::Testbed bed{config};
  bed.launch(make_graph(app));
  bed.run(seconds(30));
  bed.swarm().shutdown();

  const auto& metrics = bed.swarm().metrics();

  // Substantial delivery: at least half the nominal output rate even for
  // the weakest policy on this all-strong-signal roster.
  EXPECT_GT(double(metrics.frames_arrived()),
            0.5 * expected_rate(app) * 28.0)
      << app_name(app) << "/" << core::policy_name(policy);

  // No duplicate frames at the sink.
  std::set<std::uint64_t> ids;
  for (const auto& f : metrics.frames()) {
    EXPECT_TRUE(ids.insert(f.id.value()).second);
    EXPECT_GE(f.e2e_ms(), 0.0);
  }

  // Playback strictly ordered per sink... frame ids are globally unique,
  // and each sink's reorder buffer releases in order; with one sink the
  // full sequence is monotone. Multi-sink apps interleave, so check
  // per-parity for the two-source case (none bundled) — here: global.
  double prev = -1.0;
  for (const auto& p : metrics.plays().points()) {
    EXPECT_GT(p.value, prev);
    prev = p.value;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AppMatrixTest,
    ::testing::Combine(::testing::Values(AppKind::kFace, AppKind::kVoice,
                                         AppKind::kScene, AppKind::kGesture),
                       ::testing::ValuesIn(core::kAllPolicies)),
    [](const auto& param_info) {
      return std::string(app_name(std::get<0>(param_info.param))) + "_" +
             core::policy_name(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace swing
