// Integration: policy behaviour on the paper's testbed (shortened runs).
// These assert the *shape* of Fig. 4/5 — who wins and why — not absolute
// numbers; the bench binaries regenerate the full figures.
#include <gtest/gtest.h>

#include "apps/face_recognition.h"
#include "apps/testbed.h"

namespace swing {
namespace {

using apps::Testbed;
using apps::TestbedConfig;
using core::PolicyKind;

struct RunResult {
  double fps = 0.0;
  double mean_latency_ms = 0.0;
  std::map<std::string, std::uint64_t> frames_to;
};

RunResult run_fr(PolicyKind policy, double measure_s = 25.0) {
  TestbedConfig config;
  config.policy = policy;
  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));  // Warmup: estimates converge.
  const SimTime t0 = bed.sim().now();
  std::map<std::string, std::uint64_t> before;
  for (const auto& name : bed.worker_names()) {
    before[name] =
        bed.swarm().metrics().device(bed.id(name)).frames_from_source;
  }
  bed.run(seconds(measure_s));
  RunResult r;
  r.fps = bed.swarm().metrics().throughput_fps(t0, bed.sim().now());
  r.mean_latency_ms =
      bed.swarm().metrics().latency_stats(t0, bed.sim().now()).mean();
  for (const auto& name : bed.worker_names()) {
    r.frames_to[name] =
        bed.swarm().metrics().device(bed.id(name)).frames_from_source -
        before[name];
  }
  return r;
}

class PolicyIntegration : public ::testing::Test {
 protected:
  // Runs are deterministic, so share them across assertions.
  static const RunResult& rr() {
    static const RunResult r = run_fr(PolicyKind::kRR);
    return r;
  }
  static const RunResult& lrs() {
    static const RunResult r = run_fr(PolicyKind::kLRS);
    return r;
  }
  static const RunResult& lr() {
    static const RunResult r = run_fr(PolicyKind::kLR);
    return r;
  }
  static const RunResult& pr() {
    static const RunResult r = run_fr(PolicyKind::kPR);
    return r;
  }
};

TEST_F(PolicyIntegration, LrsMeetsRealTimeTarget) {
  // Paper Fig. 4: LRS sustains the 24 FPS input rate.
  EXPECT_GT(lrs().fps, 22.0);
}

TEST_F(PolicyIntegration, RrCollapsesUnderStragglers) {
  // Paper: RR achieves a fraction of the target (they report 2.7x less).
  EXPECT_LT(rr().fps, 16.0);
  EXPECT_GT(lrs().fps / rr().fps, 1.5);
}

TEST_F(PolicyIntegration, LrsLatencyFarBelowRr) {
  // Paper: 6.7x lower mean latency; require at least 3x here.
  EXPECT_GT(rr().mean_latency_ms / lrs().mean_latency_ms, 3.0);
}

TEST_F(PolicyIntegration, PrMissesTarget) {
  // Processing-delay routing keeps hitting weak-signal devices.
  EXPECT_LT(pr().fps, 20.0);
}

TEST_F(PolicyIntegration, RrSpreadsInputEqually) {
  // Paper Fig. 5: RR sends an equal share to every device.
  const auto& frames = rr().frames_to;
  const double mean =
      double(frames.at("B") + frames.at("C") + frames.at("D") +
             frames.at("E") + frames.at("F") + frames.at("G") +
             frames.at("H") + frames.at("I")) /
      8.0;
  for (const auto& [name, n] : frames) {
    EXPECT_NEAR(double(n), mean, mean * 0.25) << name;
  }
}

TEST_F(PolicyIntegration, LrsAvoidsWeakSignalDevices) {
  // Paper Fig. 5: LRS minimises usage of B, C, D (weak signal) and E
  // (latency straggler).
  const auto& frames = lrs().frames_to;
  const auto weak = frames.at("B") + frames.at("C") + frames.at("D");
  const auto strong = frames.at("G") + frames.at("H") + frames.at("I");
  EXPECT_LT(double(weak), 0.15 * double(strong));
  EXPECT_LT(frames.at("E"), frames.at("H") / 4);
}

TEST_F(PolicyIntegration, LrSendsLessToStragglersThanRr) {
  const auto rr_weak =
      rr().frames_to.at("B") + rr().frames_to.at("C") + rr().frames_to.at("D");
  const auto lr_weak =
      lr().frames_to.at("B") + lr().frames_to.at("C") + lr().frames_to.at("D");
  EXPECT_LT(lr_weak, rr_weak);
}

TEST_F(PolicyIntegration, SelectionConcentratesLoad) {
  // LRS (selection) uses fewer devices than LR (no selection): count
  // devices receiving a meaningful share.
  auto active = [](const RunResult& r) {
    int n = 0;
    for (const auto& [name, frames] : r.frames_to) {
      if (frames > 30) ++n;
    }
    return n;
  };
  EXPECT_LE(active(lrs()), active(lr()));
}

}  // namespace
}  // namespace swing
