// Randomized end-to-end invariants ("fuzz-lite"): build swarms with random
// rosters, placements, app shapes and policies, subject them to random
// dynamism (joins, abrupt leaves, zone jumps, background load), and check
// invariants that must hold regardless of what happened:
//
//   1. No crash, no wedge (the run completes).
//   2. Conservation: frames delivered <= frames generated.
//   3. No duplicates at the sink.
//   4. Playback is strictly monotone in frame id.
//   5. CPU energy is non-negative and finite; battery in [0, 1].
//   6. Delay components are non-negative.
#include <gtest/gtest.h>

#include <set>

#include "apps/face_recognition.h"
#include "device/profile.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

namespace swing {
namespace {

class RandomSwarmTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSwarmTest, InvariantsHoldUnderRandomDynamism) {
  Rng rng{GetParam()};
  Simulator sim;
  runtime::SwarmConfig config;
  config.seed = GetParam() * 977 + 1;
  config.worker.manager.policy =
      core::kAllPolicies[rng.uniform_int(std::size(core::kAllPolicies))];
  if (rng.uniform() < 0.3) {
    config.medium.mode = net::MediumMode::kAdhoc;
  }
  runtime::Swarm swarm{sim, config};

  // Random roster: master + 2..6 workers with random profiles and zones.
  const auto& profiles = device::testbed_profiles();
  const DeviceId master =
      swarm.add_device(device::profile_A(), {1.0, 0.0});
  std::vector<DeviceId> workers;
  const std::size_t n_workers = 2 + rng.uniform_int(5);
  for (std::size_t i = 0; i < n_workers; ++i) {
    const auto& profile = profiles[1 + rng.uniform_int(8)];
    if (rng.uniform() < 0.3) {
      workers.push_back(
          swarm.add_device_at_rssi(profile, -40.0 - rng.uniform() * 38.0));
    } else {
      workers.push_back(swarm.add_device(
          profile, {1.0 + rng.uniform() * 30.0, rng.uniform() * 10.0}));
    }
  }

  apps::FaceRecognitionConfig app;
  app.fps = 4.0 + rng.uniform() * 20.0;
  app.max_frames = 0;
  swarm.launch_master(master, apps::face_recognition_graph(app));
  // Launch a random prefix now, the rest join later.
  const std::size_t initial = 1 + rng.uniform_int(workers.size());
  for (std::size_t i = 0; i < initial; ++i) swarm.launch_worker(workers[i]);
  sim.run_for(seconds(1));
  swarm.start();

  // Random dynamism for ~30 simulated seconds.
  std::set<std::uint64_t> gone;
  std::size_t next_join = initial;
  for (int step = 0; step < 15; ++step) {
    sim.run_for(seconds(2));
    switch (rng.uniform_int(5)) {
      case 0:
        if (next_join < workers.size()) {
          swarm.launch_worker(workers[next_join++]);
        }
        break;
      case 1: {
        const auto victim = workers[rng.uniform_int(workers.size())];
        // Keep at least one worker alive; never kill the master.
        if (gone.size() + 1 < next_join && !gone.contains(victim.value())) {
          if (rng.uniform() < 0.5) {
            swarm.leave_abruptly(victim);
          } else {
            swarm.leave_gracefully(victim);
          }
          gone.insert(victim.value());
        }
        break;
      }
      case 2: {
        const auto mover = workers[rng.uniform_int(workers.size())];
        if (!gone.contains(mover.value())) {
          swarm.walker(mover).jump_to_rssi(-40.0 - rng.uniform() * 38.0);
        }
        break;
      }
      case 3: {
        const auto busy = workers[rng.uniform_int(workers.size())];
        if (!gone.contains(busy.value())) {
          swarm.device(busy).set_background_load(rng.uniform());
        }
        break;
      }
      default:
        break;  // Quiet step.
    }
  }
  sim.run_for(seconds(5));
  swarm.shutdown();
  sim.run_for(seconds(1));

  // --- Invariants ---------------------------------------------------------
  const auto& metrics = swarm.metrics();

  // (2) Conservation.
  const double total_s = sim.now().seconds();
  const auto generated_upper = std::size_t(app.fps * total_s) + 2;
  EXPECT_LE(metrics.frames_arrived(), generated_upper);

  // (3) No duplicate sink arrivals.
  std::set<std::uint64_t> ids;
  for (const auto& f : metrics.frames()) {
    EXPECT_TRUE(ids.insert(f.id.value()).second)
        << "duplicate frame " << f.id;
    // (6) Delay components sane.
    EXPECT_GE(f.breakdown.transmission_ms, 0.0);
    EXPECT_GE(f.breakdown.queuing_ms, 0.0);
    EXPECT_GE(f.breakdown.processing_ms, 0.0);
    EXPECT_GE(f.e2e_ms(), 0.0);
    EXPECT_LT(f.e2e_ms(), 120'000.0);  // Nothing absurd.
  }

  // (4) Playback monotone.
  double prev = -1.0;
  for (const auto& p : metrics.plays().points()) {
    EXPECT_GT(p.value, prev);
    prev = p.value;
  }

  // (5) Energy/battery sanity on every device.
  for (DeviceId id : swarm.devices()) {
    const double e = swarm.device(id).cpu_energy_j(sim.now());
    EXPECT_GE(e, 0.0);
    EXPECT_TRUE(std::isfinite(e));
    const double b = swarm.device(id).battery_fraction(sim.now());
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSwarmTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace swing
