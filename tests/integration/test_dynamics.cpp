// Integration: dynamism experiments (paper §VI-C) — joining, leaving,
// mobility — on reduced testbeds.
#include <gtest/gtest.h>

#include "apps/face_recognition.h"
#include "apps/testbed.h"

namespace swing {
namespace {

using apps::Testbed;
using apps::TestbedConfig;

TEST(Dynamics, JoiningRestoresTargetRate) {
  // Paper Fig. 9 (left): A + workers B, D; G joins mid-run; throughput
  // rises to 24 FPS within about a second.
  TestbedConfig config;
  config.workers = {"B", "D", "G"};
  config.weak_signal_bcd = false;
  Testbed bed{config};

  // Hold G back: only launch B and D initially.
  auto& swarm = bed.swarm();
  swarm.launch_master(bed.id("A"), apps::face_recognition_graph());
  swarm.launch_worker(bed.id("B"));
  swarm.launch_worker(bed.id("D"));
  bed.sim().run_for(seconds(1));
  swarm.start();
  bed.run(seconds(10));

  const SimTime before_join = bed.sim().now();
  const double fps_before = swarm.metrics().throughput_fps(
      before_join - seconds(5), before_join);
  // B (10 FPS) + D (6 FPS) cannot reach 24.
  EXPECT_LT(fps_before, 20.0);

  swarm.launch_worker(bed.id("G"));
  bed.run(seconds(10));
  const SimTime t = bed.sim().now();
  const double fps_after = swarm.metrics().throughput_fps(t - seconds(5), t);
  EXPECT_GT(fps_after, fps_before + 4.0);
  EXPECT_GT(fps_after, 21.0);
}

TEST(Dynamics, JoinRampIsFast) {
  // Throughput must reach its new level within ~2 s of the join.
  TestbedConfig config;
  config.workers = {"B", "D", "G"};
  config.weak_signal_bcd = false;
  Testbed bed{config};
  auto& swarm = bed.swarm();
  swarm.launch_master(bed.id("A"), apps::face_recognition_graph());
  swarm.launch_worker(bed.id("B"));
  swarm.launch_worker(bed.id("D"));
  bed.sim().run_for(seconds(1));
  swarm.start();
  bed.run(seconds(10));

  swarm.launch_worker(bed.id("G"));
  bed.run(seconds(3));
  const SimTime t = bed.sim().now();
  EXPECT_GT(swarm.metrics().throughput_fps(t - seconds(1), t), 20.0);
}

TEST(Dynamics, LeavingRecoversWithinSeconds) {
  // Paper Fig. 9 (right): B, G, H computing; G terminated abruptly;
  // throughput drops, some frames are lost, then recovers to what the
  // remaining devices can do (~16 FPS) within about a second.
  TestbedConfig config;
  config.workers = {"B", "G", "H"};
  config.weak_signal_bcd = false;
  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(12));

  auto& swarm = bed.swarm();
  const SimTime before = bed.sim().now();
  const double fps_before =
      swarm.metrics().throughput_fps(before - seconds(5), before);
  EXPECT_GT(fps_before, 22.0);

  swarm.leave_abruptly(bed.id("G"));
  bed.run(seconds(8));
  const SimTime t = bed.sim().now();
  const double fps_after = swarm.metrics().throughput_fps(t - seconds(4), t);
  // B (10) + H (13-14): the paper reports recovery to ~16 FPS.
  EXPECT_GT(fps_after, 13.0);
  EXPECT_FALSE(swarm.master()->is_member(bed.id("G")));
}

TEST(Dynamics, LeaveLosesBoundedFrames) {
  // Paper: "during the recovery phase, 13 frames are lost".
  TestbedConfig config;
  config.workers = {"B", "G", "H"};
  config.weak_signal_bcd = false;
  Testbed bed{config};
  apps::FaceRecognitionConfig app;
  app.max_frames = 720;  // 30 s of frames.
  bed.launch(apps::face_recognition_graph(app));
  bed.run(seconds(12));
  bed.swarm().leave_abruptly(bed.id("G"));
  bed.run(seconds(40));
  bed.swarm().shutdown();

  const auto arrived = bed.swarm().metrics().frames_arrived();
  // Some loss around the departure is expected, but it must be bounded —
  // the paper lost 13 of a continuous stream.
  EXPECT_LT(arrived, 720u);
  EXPECT_GT(arrived, 720u - 60u);
}

TEST(Dynamics, MobilityReroutesAwayFromWeakZone) {
  // Paper Fig. 10: B, G, H with LRS; G walks from strong signal to the
  // -80..-70 dBm zone; load shifts off G and overall throughput recovers.
  TestbedConfig config;
  config.workers = {"B", "G", "H"};
  config.weak_signal_bcd = false;
  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(12));

  auto& swarm = bed.swarm();
  const auto g = bed.id("G");
  const auto frames_before = swarm.metrics().device(g).frames_from_source;
  EXPECT_GT(frames_before, 50u);

  swarm.walker(g).jump_to_rssi(-78.0);
  bed.run(seconds(15));

  // G stops receiving meaningful load once its latency explodes.
  const auto frames_during = swarm.metrics().device(g).frames_from_source;
  bed.run(seconds(10));
  const auto frames_late = swarm.metrics().device(g).frames_from_source;
  EXPECT_LT(frames_late - frames_during, 30u);  // Probes only.

  // Overall throughput recovered on B + H.
  const SimTime t = bed.sim().now();
  EXPECT_GT(swarm.metrics().throughput_fps(t - seconds(5), t), 18.0);
}

TEST(Dynamics, ReturnToStrongZoneRestoresLoad) {
  TestbedConfig config;
  config.workers = {"G", "H"};
  config.weak_signal_bcd = false;
  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));

  auto& swarm = bed.swarm();
  const auto g = bed.id("G");
  swarm.walker(g).jump_to_rssi(-78.0);
  bed.run(seconds(15));
  const auto during = swarm.metrics().device(g).frames_from_source;

  swarm.walker(g).jump_to_rssi(-35.0);
  bed.run(seconds(15));
  const auto after = swarm.metrics().device(g).frames_from_source;
  // Probing rediscovers the healthy link and traffic returns.
  EXPECT_GT(after - during, 50u);
}

TEST(Dynamics, BackgroundLoadShiftsTraffic) {
  // Paper Fig. 2 (middle): CPU usage on a device inflates its processing
  // delay; LRS reacts by steering frames elsewhere.
  TestbedConfig config;
  config.workers = {"G", "H"};
  config.weak_signal_bcd = false;
  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));

  auto& swarm = bed.swarm();
  const auto h = bed.id("H");
  const auto g = bed.id("G");
  auto share = [&](SimTime t0, SimTime t1, DeviceId id) {
    (void)t0;
    (void)t1;
    return swarm.metrics().device(id).frames_from_source;
  };
  const auto h_before = share({}, {}, h);
  const auto g_before = share({}, {}, g);

  swarm.device(h).set_background_load(1.0);  // Compute benchmark on H.
  bed.run(seconds(20));
  const auto h_delta = share({}, {}, h) - h_before;
  const auto g_delta = share({}, {}, g) - g_before;
  // G (unloaded) now carries most of the stream.
  EXPECT_GT(g_delta, h_delta);
}

}  // namespace
}  // namespace swing
