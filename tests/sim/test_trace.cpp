#include "sim/trace.h"

#include <gtest/gtest.h>

namespace swing {
namespace {

TEST(TraceSeries, Empty) {
  TraceSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.points().empty());
}

TEST(TraceSeries, RecordsPoints) {
  TraceSeries s;
  s.record(SimTime{} + seconds(1), 10.0);
  s.record(SimTime{} + seconds(2), 20.0);
  ASSERT_EQ(s.points().size(), 2u);
  EXPECT_DOUBLE_EQ(s.points()[1].value, 20.0);
}

TEST(TraceSeries, BinnedMean) {
  TraceSeries s;
  s.record(SimTime{} + millis(100), 10.0);
  s.record(SimTime{} + millis(200), 20.0);
  s.record(SimTime{} + millis(1500), 30.0);
  const auto bins =
      s.binned_mean(SimTime{}, SimTime{} + seconds(3), seconds(1));
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_DOUBLE_EQ(bins[0], 15.0);
  EXPECT_DOUBLE_EQ(bins[1], 30.0);
  EXPECT_DOUBLE_EQ(bins[2], 0.0);  // Empty bin.
}

TEST(TraceSeries, BinnedCount) {
  TraceSeries s;
  for (int i = 0; i < 10; ++i) {
    s.record(SimTime{} + millis(100 * i), 1.0);
  }
  const auto counts =
      s.binned_count(SimTime{}, SimTime{} + seconds(2), seconds(1));
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 10u);
  EXPECT_EQ(counts[1], 0u);
}

TEST(TraceSeries, BinningIgnoresOutOfRange) {
  TraceSeries s;
  s.record(SimTime{} + seconds(10), 1.0);
  const auto counts =
      s.binned_count(SimTime{}, SimTime{} + seconds(2), seconds(1));
  EXPECT_EQ(counts[0] + counts[1], 0u);
}

TEST(Tracer, NamedSeries) {
  Tracer tracer;
  tracer.series("fps").record(SimTime{}, 24.0);
  EXPECT_TRUE(tracer.has("fps"));
  EXPECT_FALSE(tracer.has("other"));
  EXPECT_EQ(tracer.all().size(), 1u);
}

}  // namespace
}  // namespace swing
