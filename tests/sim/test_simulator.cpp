#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace swing {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime{});
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime{} + millis(30), [&] { order.push_back(3); });
  sim.schedule_at(SimTime{} + millis(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime{} + millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime{} + millis(5), [&order, i] {
      order.push_back(i);
    });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.schedule_after(millis(250), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime{} + millis(250));
  EXPECT_EQ(sim.now(), SimTime{} + millis(250));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  sim.schedule_after(millis(10), [&] {
    sim.schedule_after(millis(10), [&] {
      EXPECT_EQ(sim.now(), SimTime{} + millis(20));
    });
  });
  sim.run();
  EXPECT_EQ(sim.executed(), 2u);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule_after(millis(100), [&] {
    bool ran = false;
    sim.schedule_at(SimTime{} + millis(1), [&] { ran = true; });
    // The stale event must still run, at the current time.
    while (sim.step()) {
    }
    EXPECT_TRUE(ran);
    EXPECT_EQ(sim.now(), SimTime{} + millis(100));
  });
  sim.run();
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_after(millis(5), [&] { ran = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceIsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_after(millis(5), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireIsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_after(millis(5), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(SimTime{} + seconds(i), [&] { ++count; });
  }
  sim.run_until(SimTime{} + seconds(5));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), SimTime{} + seconds(5));
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunUntilAdvancesClockThroughQuietPeriod) {
  Simulator sim;
  sim.run_until(SimTime{} + seconds(42));
  EXPECT_EQ(sim.now(), SimTime{} + seconds(42));
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.run_for(seconds(1));
  sim.run_for(seconds(2));
  EXPECT_EQ(sim.now(), SimTime{} + seconds(3));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(millis(1), recurse);
  };
  sim.schedule_after(millis(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
}

TEST(Simulator, ExecutedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulator, QueuedExcludesCancelled) {
  Simulator sim;
  sim.schedule_after(millis(1), [] {});
  const EventId id = sim.schedule_after(millis(2), [] {});
  EXPECT_EQ(sim.queued(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.queued(), 1u);
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task{sim, millis(100), [&] { ++fires; }};
  task.start();
  sim.run_until(SimTime{} + millis(1050));
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTask, DoesNotFireBeforeStart) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task{sim, millis(10), [&] { ++fires; }};
  sim.run_until(SimTime{} + seconds(1));
  EXPECT_EQ(fires, 0);
}

TEST(PeriodicTask, StopHalts) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task{sim, millis(100), [&] { ++fires; }};
  task.start();
  sim.run_until(SimTime{} + millis(350));
  task.stop();
  sim.run_until(SimTime{} + seconds(10));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTask, StopFromWithinCallback) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task{sim, millis(10), [&] {
    if (++fires == 3) task.stop();
  }};
  task.start();
  sim.run_until(SimTime{} + seconds(1));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTask, RestartAfterStop) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task{sim, millis(10), [&] { ++fires; }};
  task.start();
  sim.run_until(SimTime{} + millis(25));
  task.stop();
  task.start();
  sim.run_until(SimTime{} + millis(55));
  EXPECT_EQ(fires, 5);  // 2 before stop (10,20) + 3 after (35,45,55).
}

TEST(PeriodicTask, DestructorCancels) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTask task{sim, millis(10), [&] { ++fires; }};
    task.start();
  }
  sim.run_until(SimTime{} + seconds(1));
  EXPECT_EQ(fires, 0);
}

TEST(PeriodicTask, StartIsIdempotent) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task{sim, millis(100), [&] { ++fires; }};
  task.start();
  task.start();
  sim.run_until(SimTime{} + millis(250));
  EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace swing
