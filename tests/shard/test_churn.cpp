// swing-shard churn: the mid-run-join frame-partitioning regression, end to
// end. A diamond graph fans every camera frame out to two branch operators
// whose half-results meet again at an id-partitioned join. A device that
// joins mid-run adds branch and join instances; the master announces them
// to every upstream host. On the legacy control plane that announcement is
// a fire-and-forget RouteUpdate: if chaos eats one copy, the branch hosts
// disagree about the join instance set forever after, and the two halves of
// a frame land on different join instances — each waits for a sibling that
// went elsewhere, and the frame never reaches the sink ("stranded").
//
// The graph is built so the halves of most frames are processed on
// *different* hosts by construction: both branches are id-partitioned, but
// `left` is capped at two replicas (hosts B, C) while `right` replicates
// everywhere (B, C, joiner). With picks of f mod 2 and f mod 3, a third of
// all frames pair a stale-host half with a fresh-host half once the route
// tables diverge — no reliance on load-balancer accidents.
//
// With the epoch-versioned control plane (SwarmConfig::with_cells) the same
// lost message is repaired by seq anti-entropy, and the epoch boundary pins
// every frame below it to the pre-join set on every host — so the swarm
// routes each frame wholly by the old set or wholly by the new one. The
// ChurnFix test asserts the fixed behaviour; ChurnBug documents the legacy
// failure under the *identical* fault script and fails if someone "fixes"
// it without epochs (at which point the epoch plane is redundant and both
// tests deserve a fresh look).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "apps/testbed.h"
#include "core/tuple_ledger.h"
#include "dataflow/function_unit.h"
#include "dataflow/graph.h"
#include "dataflow/tuple.h"
#include "device/profile.h"
#include "runtime/scenario.h"

namespace swing {
namespace {

using apps::Testbed;
using apps::TestbedConfig;
using dataflow::Context;
using dataflow::Tuple;

constexpr std::uint64_t kFrames = 120;

// Tags its half so the join can tell the branches apart. The tag is
// config, not evolving state — nothing to checkpoint.
class BranchUnit final : public dataflow::FunctionUnit {  // swing-lint: stateless
 public:
  explicit BranchUnit(const char* tag) : tag_(tag) {}
  void process(const Tuple& input, Context& ctx) override {
    Tuple out = input.derive();
    out.set(tag_, std::int64_t(1));
    ctx.emit(std::move(out));
  }

 private:
  const char* tag_;
};

// Minimal id-join: buffers the first half, emits on the second. Unbounded
// pending state is fine here — the test runs 120 frames and *counts* on
// stranded halves surviving to the audit.
// Deliberately NOT checkpointable: the churn tests measure stranded halves
// surviving in pending state to the audit; recovery must not rescue them.
class JoinUnit final : public dataflow::FunctionUnit {  // swing-lint: stateless
 public:
  void process(const Tuple& input, Context& ctx) override {
    const auto [it, inserted] = pending_.try_emplace(input.id().value(), input);
    if (inserted) return;
    // A retransmit/fallback race can deliver the same half twice: only a
    // *complementary* half completes the join; duplicates are absorbed.
    const bool have_left =
        it->second.get_as<std::int64_t>("left_done") != nullptr;
    const bool got_left = input.get_as<std::int64_t>("left_done") != nullptr;
    if (have_left == got_left) return;
    Tuple merged = it->second;
    for (const auto& [key, value] : input.fields()) merged.set(key, value);
    pending_.erase(it);
    ctx.emit(merged.derive());
  }

 private:
  std::unordered_map<std::uint64_t, Tuple> pending_;
};

dataflow::AppGraph churn_graph() {
  dataflow::AppGraph graph;
  dataflow::SourceSpec camera;
  camera.rate_per_s = 6.0;
  camera.max_tuples = kFrames;
  camera.generate = [](TupleId id, SimTime, Rng&) {
    Tuple t;
    t.set("frame", dataflow::Blob{4096, id.value()});
    return t;
  };
  const auto src = graph.add_source("camera", std::move(camera));
  const auto left = graph.add_transform(
      "left", [] { return std::make_unique<BranchUnit>("left_done"); },
      dataflow::constant_cost(4.0), /*max_replicas=*/2);
  const auto right = graph.add_transform(
      "right", [] { return std::make_unique<BranchUnit>("right_done"); },
      dataflow::constant_cost(4.0));
  const auto join = graph.add_transform(
      "join", [] { return std::make_unique<JoinUnit>(); },
      dataflow::constant_cost(2.0));
  const auto sink = graph.add_sink("display");
  graph.connect(src, left).connect(src, right);
  graph.connect(left, join).connect(right, join);
  graph.connect(join, sink);
  graph.partition_by_id(left).partition_by_id(right).partition_by_id(join);
  return graph;
}

struct ChurnRun {
  core::AuditReport report;
  std::uint64_t frames_arrived = 0;
};

// One diamond run with a mid-run join under a control-plane partition.
// Timeline (6 fps, 120 frames => 20 s of stream):
//
//   t=5.5s  device C is partitioned from the master/camera device A
//   t=6.0s  a new device joins the swarm (new right + join instances);
//           the route updates announcing them to C die on the wire
//   t=9.0s  partition heals; C resumes processing branch halves
//
// With cells, C's next report reveals the seq gap and the master re-sends
// the logged updates; the epoch boundary (watermark + 64-frame slack)
// lands only after every host has been repaired. Without cells, C routes
// join halves by the stale set for the rest of the run.
ChurnRun run_churn(bool with_cells) {
  TestbedConfig config;
  config.seed = 42;
  config.workers = {"B", "C"};
  // Strong links everywhere: the scripted partition must be the only
  // disturbance, or congestion sheds would mask the stranding signal.
  config.weak_signal_bcd = false;
  config.swarm.chaos_enabled = true;
  config.swarm.chaos.seed = 23;
  config.swarm.with_recovery();
  if (with_cells) {
    config.swarm.with_cells(4);
    config.swarm.master.epoch_boundary_slack = 64;
  }

  Testbed bed{config};
  // The joiner exists in the radio picture from t=0 but runs no worker
  // until the scripted mid-run join (Testbed launches only its `workers`).
  const DeviceId joiner = bed.swarm().add_device_at_rssi(
      device::profile_D(), config.strong_rssi_dbm);
  bed.launch(churn_graph());

  runtime::Scenario script{bed.swarm()};
  script.partition_at(seconds(5.5), bed.id("A"), bed.id("C"), seconds(3.5));
  script.join_at(seconds(6.0), joiner);
  script.run_for(seconds(30.0));
  bed.swarm().stop();
  bed.run(seconds(8.0));  // Drain.

  ChurnRun out;
  out.report = bed.swarm().audit();
  out.frames_arrived = bed.swarm().metrics().frames_arrived();
  return out;
}

TEST(ShardChurn, ChurnFix_EpochRoutingJoinsEveryFrameOnce) {
  const ChurnRun run = run_churn(/*with_cells=*/true);
  // Strict conservation after stop + drain: nothing unaccounted.
  EXPECT_TRUE(run.report.conserved()) << run.report.summary();
  // Every frame fused and played at the sink — no half is stranded
  // waiting for a sibling that was routed elsewhere.
  EXPECT_EQ(run.frames_arrived, kFrames) << run.report.summary();
}

TEST(ShardChurn, ChurnBug_LegacyRoutingStrandsFramesAfterLostUpdate) {
  const ChurnRun fixed = run_churn(/*with_cells=*/true);
  const ChurnRun legacy = run_churn(/*with_cells=*/false);
  // The identical fault script strands frames on the legacy plane: halves
  // absorbed by divergent join picks sit in pending state forever, so the
  // sink sees measurably fewer frames than with epoch routing.
  EXPECT_LT(legacy.frames_arrived, fixed.frames_arrived)
      << "legacy " << legacy.report.summary() << " vs fixed "
      << fixed.report.summary();
  // The stranded halves surface as consumed-but-never-delivered ids.
  EXPECT_GT(legacy.report.consumed, fixed.report.consumed)
      << "legacy " << legacy.report.summary() << " vs fixed "
      << fixed.report.summary();
}

}  // namespace
}  // namespace swing
