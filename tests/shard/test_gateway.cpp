// swing-shard gateway unit tests: cell placement, split/merge thresholds,
// handoff, role promotion, epoch monotonicity, and determinism of the whole
// membership machine (pure data structure — no simulator involved).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "shard/gateway.h"

namespace swing::shard {
namespace {

GatewayConfig small_cells() {
  GatewayConfig config;
  config.cell_size_target = 2;  // Split at 4 members, merge below 1.
  return config;
}

TEST(ShardCells, AdmitPlacesIntoLowestCellWithRoom) {
  GatewayCoordinator gw{small_cells()};
  for (std::uint64_t d = 0; d < 3; ++d) gw.admit(DeviceId{d});
  // Target 2, split threshold 4: the first three all fit in cell 0.
  EXPECT_EQ(gw.cell_count(), 1u);
  EXPECT_EQ(gw.cell_of(DeviceId{0}), gw.cell_of(DeviceId{2}));
  EXPECT_EQ(gw.cell(gw.cell_of(DeviceId{0}))->size(), 3u);
}

TEST(ShardCells, SplitAtTwiceTarget) {
  GatewayCoordinator gw{small_cells()};
  for (std::uint64_t d = 0; d < 4; ++d) gw.admit(DeviceId{d});
  // The fourth admit reaches 2x target and splits into sorted halves.
  EXPECT_EQ(gw.cell_count(), 2u);
  EXPECT_EQ(gw.stats().cell_splits, 1u);
  // Low half keeps the original cell; high half moved to the new one.
  EXPECT_EQ(gw.cell_of(DeviceId{0}), gw.cell_of(DeviceId{1}));
  EXPECT_EQ(gw.cell_of(DeviceId{2}), gw.cell_of(DeviceId{3}));
  EXPECT_NE(gw.cell_of(DeviceId{0}), gw.cell_of(DeviceId{2}));
}

TEST(ShardCells, RoleIsLowestMemberId) {
  GatewayCoordinator gw{small_cells()};
  for (std::uint64_t d = 0; d < 4; ++d) gw.admit(DeviceId{d});
  EXPECT_EQ(gw.cell(gw.cell_of(DeviceId{1}))->role_device(), DeviceId{0});
  EXPECT_EQ(gw.cell(gw.cell_of(DeviceId{3}))->role_device(), DeviceId{2});
}

TEST(ShardCells, RemovalBelowHalfTargetMerges) {
  GatewayConfig config;
  config.cell_size_target = 4;  // Merge threshold: size < 2.
  GatewayCoordinator gw{config};
  for (std::uint64_t d = 0; d < 8; ++d) gw.admit(DeviceId{d});
  ASSERT_EQ(gw.cell_count(), 2u);
  // Drain the high cell down to one member: it merges into the survivor.
  gw.remove(DeviceId{7});
  gw.remove(DeviceId{6});
  gw.remove(DeviceId{5});
  EXPECT_EQ(gw.cell_count(), 1u);
  EXPECT_GE(gw.stats().cell_merges, 1u);
  EXPECT_TRUE(gw.cell(gw.cell_of(DeviceId{4}))->has_member(DeviceId{0}));
}

TEST(ShardCells, RemovingLastMemberRetiresCellWithoutMerge) {
  GatewayCoordinator gw{small_cells()};
  gw.admit(DeviceId{0});
  ASSERT_EQ(gw.cell_count(), 1u);
  gw.remove(DeviceId{0});
  EXPECT_EQ(gw.cell_count(), 0u);
  EXPECT_EQ(gw.stats().cell_merges, 0u);
  EXPECT_FALSE(gw.cell_of(DeviceId{0}).valid());
}

TEST(ShardCells, HandoffMovesDeviceAndCounts) {
  GatewayConfig config;
  config.cell_size_target = 4;
  GatewayCoordinator gw{config};
  for (std::uint64_t d = 0; d < 8; ++d) gw.admit(DeviceId{d});
  const CellId from = gw.cell_of(DeviceId{3});
  const CellId to = gw.cell_of(DeviceId{7});
  ASSERT_NE(from, to);
  const auto affected = gw.handoff(DeviceId{3}, to);
  EXPECT_EQ(gw.cell_of(DeviceId{3}), to);
  EXPECT_EQ(gw.stats().handoffs, 1u);
  // Both the source and destination cells are reported affected.
  EXPECT_EQ(affected.size(), 2u);
}

TEST(ShardCells, PromotionWhenRoleDeviceLeaves) {
  GatewayCoordinator gw{small_cells()};
  gw.admit(DeviceId{0});
  gw.admit(DeviceId{1});
  const CellId cell = gw.cell_of(DeviceId{0});
  ASSERT_EQ(gw.cell(cell)->role_device(), DeviceId{0});
  gw.note_hello(cell, DeviceId{0});
  EXPECT_TRUE(gw.cell(cell)->role_confirmed());
  gw.remove(DeviceId{0});
  // Surviving lowest id takes over; confirmation resets until it hellos.
  EXPECT_EQ(gw.cell(cell)->role_device(), DeviceId{1});
  EXPECT_FALSE(gw.cell(cell)->role_confirmed());
  EXPECT_EQ(gw.stats().promotions, 1u);
}

TEST(ShardCells, EveryMembershipChangeBumpsTheEpoch) {
  GatewayCoordinator gw{small_cells()};
  std::uint64_t last = gw.epoch();
  for (std::uint64_t d = 0; d < 5; ++d) {
    gw.admit(DeviceId{d});
    EXPECT_GT(gw.epoch(), last);
    last = gw.epoch();
  }
  gw.remove(DeviceId{2});
  EXPECT_GT(gw.epoch(), last);
}

TEST(ShardCells, RouteBoundaryTracksWatermarkPlusSlack) {
  GatewayConfig config;
  config.cell_size_target = 2;
  config.epoch_boundary_slack = 100;
  GatewayCoordinator gw{config};
  gw.admit(DeviceId{0});
  // No frames minted yet: boundary 0 (applies immediately from the start).
  EXPECT_EQ(gw.route_boundary(), 0u);
  gw.report(DeviceId{0}, 500);
  EXPECT_EQ(gw.route_boundary(), 600u);
  // Monotone even if the reported watermark regresses.
  gw.report(DeviceId{0}, 400);
  EXPECT_EQ(gw.route_boundary(), 600u);
}

TEST(ShardCells, SameAdmitSequenceSameTopology) {
  const auto run = [] {
    GatewayCoordinator gw{small_cells()};
    for (std::uint64_t d = 0; d < 20; ++d) gw.admit(DeviceId{d});
    for (std::uint64_t d = 0; d < 20; d += 3) gw.remove(DeviceId{d});
    std::vector<std::uint64_t> shape;
    for (const auto& [id, cell] : gw.cells()) {
      shape.push_back(id);
      shape.push_back(cell.size());
      shape.push_back(cell.role_device().value());
    }
    shape.push_back(gw.epoch());
    return shape;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace swing::shard
