// swing-shard chaos: cell-master crash and gateway partition. Named Shard*
// so CI's shard-smoke job selects the suite with `ctest -R '^Shard'`.
//
// Both scenarios run the paper testbed with four workers in two cells
// (target 2, split at 4). The swarm forms its cells during a short warmup,
// the test reads the resulting topology off the master, and only then arms
// the chaos verbs — cell ids are minted by the gateway at admit time, so
// they are data, not constants.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/face_recognition.h"
#include "apps/testbed.h"
#include "core/tuple_ledger.h"
#include "runtime/scenario.h"

namespace swing {
namespace {

using apps::Testbed;
using apps::TestbedConfig;

TestbedConfig two_cell_config() {
  TestbedConfig config;
  config.seed = 42;
  config.workers = {"B", "C", "D", "E"};
  config.swarm.chaos_enabled = true;
  config.swarm.chaos.seed = 31;
  config.swarm.with_recovery();
  config.swarm.with_cells(2);
  return config;
}

TEST(ShardChaos, CellMasterCrashPromotesSurvivorAndKeepsDelivering) {
  Testbed bed{two_cell_config()};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(2.5));  // Let the cells form.

  auto* master = bed.swarm().master();
  ASSERT_NE(master, nullptr);
  ASSERT_EQ(master->cell_count(), 2u);
  const CellId cell = master->cell_of(bed.id("E"));
  ASSERT_TRUE(cell.valid());
  const DeviceId old_role = master->cell_role_device(cell);
  ASSERT_TRUE(old_role.valid());

  runtime::Scenario script{bed.swarm()};
  script.crash_cell_master_at(seconds(3.0), cell);
  script.run_for(seconds(14.0));
  bed.swarm().stop();
  bed.run(seconds(6.0));

  // The surviving member was promoted to the cell-master role.
  const DeviceId new_role = master->cell_role_device(cell);
  EXPECT_TRUE(new_role.valid());
  EXPECT_NE(new_role, old_role);
  EXPECT_GE(master->gateway()->stats().promotions, 1u);

  // Delivery continued and the audit stayed green (the crash itself books
  // its in-flight tuples as abrupt-leave drops, not silent losses).
  const core::AuditReport report = bed.swarm().audit();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.delivered, 0u);
  EXPECT_GT(bed.swarm().registry().counter_total("epoch_bumps"), 0u);
}

TEST(ShardChaos, GatewayPartitionHealsWithSurvivingCellsDelivering) {
  Testbed bed{two_cell_config()};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(2.5));

  auto* master = bed.swarm().master();
  ASSERT_NE(master, nullptr);
  ASSERT_EQ(master->cell_count(), 2u);
  const std::uint64_t before = bed.swarm().audit().delivered;

  runtime::Scenario script{bed.swarm()};
  // Cut one cell's role device off from the gateway for 4 s — shorter than
  // the 6 s membership timeout, so the member must survive the silence.
  script.partition_gateway_at(seconds(1.0), bed.id("E"), seconds(4.0));
  script.run_for(seconds(14.0));
  bed.swarm().stop();
  bed.run(seconds(6.0));

  // The untouched cell kept the pipeline moving during the partition, and
  // the partitioned device was not evicted: both cells are still standing.
  const core::AuditReport report = bed.swarm().audit();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.delivered, before);
  EXPECT_EQ(master->cell_count(), 2u);
  EXPECT_TRUE(master->cell_of(bed.id("E")).valid());
  // Per-cell control accounting saw traffic for both cells.
  EXPECT_GT(bed.swarm().registry().counter_total("master_msgs"), 0u);
}

}  // namespace
}  // namespace swing
