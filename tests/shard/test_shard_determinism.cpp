// swing-shard determinism and default-mode isolation.
//
// The shard control plane must be as replayable as everything else: two
// same-seed runs in cell mode fold to identical ledger digests and registry
// snapshots. And when cells are off (the default), the subsystem must be
// invisible — no shard metrics in the registry, no gateway on the master —
// which is what keeps the default configuration byte-identical to the
// pre-shard control plane (tier-1 determinism suites pin that behaviour).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/face_recognition.h"
#include "apps/testbed.h"
#include "core/tuple_ledger.h"

namespace swing {
namespace {

using apps::Testbed;
using apps::TestbedConfig;

struct RunResult {
  std::uint64_t ledger_digest = 0;
  std::string registry_snapshot;
  std::uint64_t delivered = 0;
  core::AuditReport report;
};

RunResult run_face(bool with_cells, std::size_t cell_size_target = 2) {
  TestbedConfig config;
  config.seed = 42;
  config.workers = {"B", "C", "D", "E"};
  if (with_cells) config.swarm.with_cells(cell_size_target);

  Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(12.0));
  bed.swarm().stop();
  bed.run(seconds(5.0));

  RunResult out;
  out.ledger_digest = bed.swarm().ledger().digest();
  out.registry_snapshot = bed.swarm().registry().snapshot().dump();
  out.report = bed.swarm().audit();
  out.delivered = out.report.delivered;
  return out;
}

TEST(ShardDeterminism, SameSeedCellModeIsByteIdentical) {
  const RunResult a = run_face(/*with_cells=*/true);
  const RunResult b = run_face(/*with_cells=*/true);
  EXPECT_EQ(a.ledger_digest, b.ledger_digest);
  EXPECT_EQ(a.registry_snapshot, b.registry_snapshot);
  EXPECT_EQ(a.delivered, b.delivered);
  ASSERT_GT(a.delivered, 0u);
}

TEST(ShardDeterminism, CellModeConservesAfterDrain) {
  const RunResult multi = run_face(/*with_cells=*/true);
  EXPECT_TRUE(multi.report.conserved()) << multi.report.summary();
  // Single-cell mode (every worker fits one cell) conserves too: the cell
  // machinery reduces to bookkeeping when nothing ever splits.
  const RunResult single = run_face(/*with_cells=*/true, /*target=*/8);
  EXPECT_TRUE(single.report.conserved()) << single.report.summary();
}

TEST(ShardDeterminism, DefaultModeRegistersNoShardMetrics) {
  const RunResult off = run_face(/*with_cells=*/false);
  // Shard instruments are registered lazily and only in cell mode, so the
  // default-mode snapshot must not know the subsystem exists.
  for (const char* name : {"cells_active", "epoch_bumps", "cell_splits",
                           "cell_merges", "handoffs", "master_msgs",
                           "stale_epoch_rejected"}) {
    EXPECT_EQ(off.registry_snapshot.find(name), std::string::npos)
        << name << " leaked into a default-mode registry snapshot";
  }
  // And cell mode does surface them.
  const RunResult on = run_face(/*with_cells=*/true);
  EXPECT_NE(on.registry_snapshot.find("cells_active"), std::string::npos);
  EXPECT_NE(on.registry_snapshot.find("master_msgs"), std::string::npos);
}

}  // namespace
}  // namespace swing
