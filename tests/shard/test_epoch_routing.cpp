// swing-shard epoch-versioned routing: wire codecs for the four new control
// messages, and the SwarmManager route-history regression the mid-run-join
// frame-partitioning fix rests on — every host holding the same updates
// must partition any given frame id identically, no matter when each host
// learned of the change.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "core/swarm_manager.h"
#include "dataflow/codec.h"
#include "shard/shard_messages.h"

namespace swing::shard {
namespace {

template <typename M>
void expect_roundtrip(const M& msg) {
  const Bytes bytes = dataflow::encode_to_bytes(msg);
  const M again = dataflow::decode_from<M>(bytes);
  EXPECT_EQ(msg, again);
  EXPECT_EQ(bytes, dataflow::encode_to_bytes(again));
}

TEST(ShardEpoch, CellAssignRoundtrip) {
  expect_roundtrip(CellAssignMsg{CellId{3}, DeviceId{7}, DeviceId{5}, 42});
}

TEST(ShardEpoch, EpochRouteUpdateRoundtrip) {
  EpochRouteUpdateMsg msg;
  msg.seq = 9;
  msg.epoch = 17;
  msg.boundary_frame = 4096;
  msg.op = EpochRouteUpdateMsg::Op::kRemove;
  msg.route = runtime::RouteUpdateMsg{
      InstanceId{2}, runtime::InstanceInfo{InstanceId{4}, OperatorId{1},
                                           DeviceId{3}}};
  expect_roundtrip(msg);
}

TEST(ShardEpoch, GatewayHelloRoundtrip) {
  expect_roundtrip(GatewayHelloMsg{CellId{1}, DeviceId{2}, 8});
}

TEST(ShardEpoch, CellReportRoundtrip) {
  expect_roundtrip(CellReportMsg{CellId{1}, DeviceId{2}, 2048, 12, 8});
}

TEST(ShardEpoch, TruncatedInputThrows) {
  const Bytes bytes = dataflow::encode_to_bytes(
      CellReportMsg{CellId{1}, DeviceId{2}, 2048, 12, 8});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r{std::span{bytes.data(), len}};
    EXPECT_THROW((void)CellReportMsg::decode(r), WireFormatError) << len;
  }
}

TEST(ShardEpoch, OutOfRangeOpThrows) {
  EpochRouteUpdateMsg msg;
  msg.op = EpochRouteUpdateMsg::Op::kAdd;
  Bytes bytes = dataflow::encode_to_bytes(msg);
  // The op byte sits right after the three leading u64 fields.
  bytes[24] = 0x7f;
  EXPECT_THROW((void)dataflow::decode_from<EpochRouteUpdateMsg>(bytes),
               WireFormatError);
}

// --- SwarmManager route history --------------------------------------------

core::SwarmManager make_manager(std::uint64_t seed = 1) {
  return core::SwarmManager{core::SwarmManagerConfig{}, Rng{seed}};
}

TEST(ShardEpoch, LegacyManagerHasNoHistory) {
  core::SwarmManager m = make_manager();
  m.add_downstream(InstanceId{1});
  EXPECT_FALSE(m.epoch_routing());
  EXPECT_EQ(m.downstreams_at(0), nullptr);  // Legacy fallback path.
}

TEST(ShardEpoch, SeedSnapshotsCurrentSetFromFrameZero) {
  core::SwarmManager m = make_manager();
  m.add_downstream(InstanceId{2});
  m.add_downstream(InstanceId{1});
  m.seed_route_epoch();
  ASSERT_TRUE(m.epoch_routing());
  const auto* downs = m.downstreams_at(0);
  ASSERT_NE(downs, nullptr);
  EXPECT_EQ(*downs, (std::vector<InstanceId>{InstanceId{1}, InstanceId{2}}));
}

TEST(ShardEpoch, BoundaryPinsOldFramesToOldSet) {
  core::SwarmManager m = make_manager();
  m.add_downstream(InstanceId{1});
  m.add_downstream(InstanceId{2});
  m.seed_route_epoch();
  ASSERT_TRUE(m.apply_route_epoch(1, 100, InstanceId{3}, true));
  // Frames below the boundary keep the pre-join set; at and past it, the
  // joined instance participates.
  EXPECT_EQ(m.downstreams_at(99)->size(), 2u);
  EXPECT_EQ(m.downstreams_at(100)->size(), 3u);
  EXPECT_EQ(m.downstreams_at(100'000)->size(), 3u);
  // The legacy membership view follows along (estimator, decision).
  EXPECT_EQ(m.downstreams().size(), 3u);
}

TEST(ShardEpoch, TwoHostsPartitionEveryFrameIdentically) {
  // The stranded-frame regression: the two upstream branches of a
  // key-partitioned join live on different hosts and learn of a mid-run
  // join at different times. With epoch routing both must map every frame
  // id to the same join instance — the sets are sorted and boundary-pinned,
  // so the modulus pick agrees regardless of when each host applied the
  // update (worker.cpp send_on_edge).
  core::SwarmManager a = make_manager(1);
  core::SwarmManager b = make_manager(2);
  for (auto* m : {&a, &b}) {
    m->add_downstream(InstanceId{10});
    m->add_downstream(InstanceId{11});
    m->seed_route_epoch();
  }
  // Host A applies the join update "immediately"; host B keeps routing old
  // frames meanwhile and applies the same update later. Frame ids do not
  // care: the partition function is (boundary, sorted set), not wall time.
  ASSERT_TRUE(a.apply_route_epoch(1, 256, InstanceId{12}, true));
  for (std::uint64_t f = 0; f < 512; ++f) {
    (void)b.downstreams_at(f);  // B routes a while before hearing the news.
  }
  ASSERT_TRUE(b.apply_route_epoch(1, 256, InstanceId{12}, true));
  for (std::uint64_t f = 0; f < 1024; ++f) {
    const auto* da = a.downstreams_at(f);
    const auto* db = b.downstreams_at(f);
    ASSERT_NE(da, nullptr);
    ASSERT_NE(db, nullptr);
    ASSERT_EQ(*da, *db) << "frame " << f;
    // The actual partition pick both workers compute:
    EXPECT_EQ((*da)[f % da->size()], (*db)[f % db->size()]) << "frame " << f;
  }
}

TEST(ShardEpoch, StaleEpochRejected) {
  core::SwarmManager m = make_manager();
  m.add_downstream(InstanceId{1});
  m.seed_route_epoch();
  ASSERT_TRUE(m.apply_route_epoch(5, 100, InstanceId{2}, true));
  // An older epoch must be rejected wholesale and change nothing.
  EXPECT_FALSE(m.apply_route_epoch(4, 50, InstanceId{3}, true));
  EXPECT_EQ(m.route_epoch(), 5u);
  EXPECT_EQ(m.downstreams().size(), 2u);
  EXPECT_EQ(m.downstreams_at(100)->size(), 2u);
}

TEST(ShardEpoch, SameEpochBatchCoalesces) {
  // One deploy batch adds several instances under a single epoch: they must
  // coalesce into one history entry, not reject each other as stale.
  core::SwarmManager m = make_manager();
  m.add_downstream(InstanceId{1});
  m.seed_route_epoch();
  ASSERT_TRUE(m.apply_route_epoch(1, 64, InstanceId{2}, true));
  ASSERT_TRUE(m.apply_route_epoch(1, 64, InstanceId{3}, true));
  EXPECT_EQ(m.route_epoch(), 1u);
  EXPECT_EQ(m.downstreams_at(64)->size(), 3u);
  EXPECT_EQ(m.downstreams_at(63)->size(), 1u);
}

TEST(ShardEpoch, BoundariesStayMonotone) {
  core::SwarmManager m = make_manager();
  m.add_downstream(InstanceId{1});
  m.seed_route_epoch();
  ASSERT_TRUE(m.apply_route_epoch(1, 100, InstanceId{2}, true));
  // A later epoch with a lower boundary (watermark skew) must not create a
  // non-monotone history: it clamps up to the previous boundary, where the
  // newer epoch's set shadows the older one.
  ASSERT_TRUE(m.apply_route_epoch(2, 40, InstanceId{3}, true));
  EXPECT_EQ(m.downstreams_at(99)->size(), 1u);   // Seed set below both.
  EXPECT_EQ(m.downstreams_at(100)->size(), 3u);  // Epoch-2 set from 100.
}

TEST(ShardEpoch, HistoryIsBounded) {
  core::SwarmManager m = make_manager();
  m.add_downstream(InstanceId{1});
  m.seed_route_epoch();
  for (std::uint64_t e = 1; e <= 100; ++e) {
    ASSERT_TRUE(m.apply_route_epoch(e, e * 10, InstanceId{e + 1}, e % 2 == 0));
  }
  // Still answers for ancient frames (oldest surviving entry) and fresh
  // ones, without unbounded growth.
  EXPECT_NE(m.downstreams_at(0), nullptr);
  EXPECT_NE(m.downstreams_at(10'000), nullptr);
  EXPECT_EQ(m.route_epoch(), 100u);
}

}  // namespace
}  // namespace swing::shard
