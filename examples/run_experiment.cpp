// run_experiment: a small CLI for driving custom Swing experiments without
// writing code — pick an app, a routing policy, a device roster, signal
// zones and a duration, and get the standard report.
//
//   run_experiment --app=fr --policy=LRS --workers=B,C,G,H
//                  --weak=B,C --seconds=60 --fps=24
//
// Apps: fr (face recognition), vt (voice translation), scene (diamond
// scene analysis), gesture (windowed accelerometer classification).
// Policies: RR, PR, LR, PRS, LRS, plus the battery-aware ELRS extension.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/face_recognition.h"
#include "apps/gesture_recognition.h"
#include "apps/scene_analysis.h"
#include "apps/testbed.h"
#include "apps/voice_translation.h"
#include "common/table.h"

using namespace swing;

namespace {

std::string flag(int argc, char** argv, const std::string& key,
                 const std::string& def) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return def;
}

std::vector<std::string> split(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in{csv};
  for (std::string item; std::getline(in, item, ',');) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = flag(argc, argv, "app", "fr");
  const std::string policy = flag(argc, argv, "policy", "LRS");
  const auto workers = split(
      flag(argc, argv, "workers", "B,C,D,E,F,G,H,I"));
  const auto weak = split(flag(argc, argv, "weak", ""));
  const double seconds_ = std::stod(flag(argc, argv, "seconds", "60"));
  const double fps = std::stod(flag(argc, argv, "fps", "0"));
  const double weak_rssi = std::stod(flag(argc, argv, "rssi", "-78"));

  apps::TestbedConfig config;
  config.policy = core::policy_from_name(policy);
  config.workers = workers;
  config.weak_signal_bcd = false;  // Zones come from --weak below.
  apps::Testbed bed{config};
  for (const auto& name : weak) {
    bed.swarm().medium().set_rssi_override(bed.id(name), weak_rssi);
  }

  dataflow::AppGraph graph;
  if (app == "fr") {
    apps::FaceRecognitionConfig c;
    if (fps > 0) c.fps = fps;
    graph = apps::face_recognition_graph(c);
  } else if (app == "vt") {
    apps::VoiceTranslationConfig c;
    if (fps > 0) c.fps = fps;
    graph = apps::voice_translation_graph(c);
  } else if (app == "scene") {
    apps::SceneAnalysisConfig c;
    if (fps > 0) c.fps = fps;
    graph = apps::scene_analysis_graph(c);
  } else if (app == "gesture") {
    apps::GestureConfig c;
    if (fps > 0) c.sample_hz = fps;
    graph = apps::gesture_recognition_graph(c);
  } else {
    std::cerr << "unknown --app=" << app
              << " (fr | vt | scene | gesture)\n";
    return 1;
  }

  bed.launch(std::move(graph));
  bed.run(swing::seconds(10));  // Warmup.
  const SimTime t0 = bed.sim().now();
  bed.run(swing::seconds(seconds_));
  const SimTime t1 = bed.sim().now();

  auto& metrics = bed.swarm().metrics();
  const auto stats = metrics.latency_stats(t0, t1);
  std::cout << "app=" << app << " policy=" << policy << " workers="
            << workers.size() << " window=" << seconds_ << "s\n\n";
  std::cout << "throughput: " << fmt(metrics.throughput_fps(t0, t1), 2)
            << " FPS\nlatency: mean " << fmt(stats.mean(), 1) << " ms, p50 "
            << fmt(stats.median(), 1) << " ms, p95 "
            << fmt(stats.quantile(0.95), 1) << " ms, max "
            << fmt(stats.max(), 1) << " ms\n\n";

  TextTable table({"device", "model", "input FPS", "mean CPU", "power (W)",
                   "RSSI (dBm)"});
  for (const auto& name : workers) {
    const DeviceId id = bed.id(name);
    const auto& counters = metrics.device(id);
    const auto power = bed.swarm().average_power(id);
    table.row(name, device::profile_by_name(name).model,
              fmt(double(counters.frames_from_source) /
                      (t1 - SimTime{}).seconds(),
                  1),
              fmt(100.0 * counters.cpu_util.mean(), 0) + "%",
              power.total_w(), bed.swarm().medium().rssi(id));
  }
  table.print(std::cout);
  return 0;
}
