// Cloudlet mode (paper §II): when a stationary compute box with an Android
// VM happens to be nearby, Swing uses it like any other worker — the
// latency-based policy discovers that it is fast and well-connected and
// shifts the heavy stages onto it, while the phones' batteries coast.
// When the cloudlet disappears (the users walk on), the swarm falls back
// to peer phones without interruption.
#include <iostream>

#include "apps/face_recognition.h"
#include "apps/testbed.h"
#include "common/table.h"

using namespace swing;

int main() {
  apps::TestbedConfig config;
  config.workers = {"B", "G"};  // Two phones' worth of helpers...
  config.weak_signal_bcd = false;
  apps::Testbed bed{config};
  auto& swarm = bed.swarm();
  auto& sim = bed.sim();

  // ...plus a cloudlet by the coffee counter.
  const DeviceId cloudlet =
      swarm.add_device(device::cloudlet_profile(), {3.0, 0.0});

  bed.launch(apps::face_recognition_graph());
  swarm.launch_worker(cloudlet);
  bed.run(seconds(20));

  auto& metrics = swarm.metrics();
  auto phase_report = [&](const char* phase, SimTime from, SimTime to) {
    const auto stats = metrics.latency_stats(from, to);
    std::cout << phase << ": " << fmt(metrics.throughput_fps(from, to), 1)
              << " FPS, mean latency " << fmt(stats.mean(), 0) << " ms\n";
  };

  const SimTime t0 = sim.now();
  phase_report("with cloudlet   ", t0 - seconds(10), t0);

  TextTable table({"device", "frames routed", "worker share"});
  const std::uint64_t total = metrics.device(bed.id("B")).frames_in +
                              metrics.device(bed.id("G")).frames_in +
                              metrics.device(cloudlet).frames_in;
  for (const std::string name : {"B", "G"}) {
    const auto n = metrics.device(bed.id(name)).frames_in;
    table.row(device::profile_by_name(name).model, n,
              fmt(100.0 * double(n) / double(total), 0) + "%");
  }
  const auto n = metrics.device(cloudlet).frames_in;
  table.row("Cloudlet VM", n, fmt(100.0 * double(n) / double(total), 0) + "%");
  table.print(std::cout);

  // The users leave the cafe; the cloudlet drops off the network.
  std::cout << "\ncloudlet goes out of range...\n";
  swarm.leave_abruptly(cloudlet);
  bed.run(seconds(15));
  const SimTime t1 = sim.now();
  phase_report("phones only     ", t1 - seconds(10), t1);

  std::cout << "\nThe swarm absorbs the cloudlet transparently and "
               "degrades gracefully when it vanishes.\n";
  return 0;
}
