// Scene analysis demo: a diamond dataflow graph (camera fans out to a face
// branch and an object branch; a stateful fusion unit joins the halves)
// running on a small swarm. Shows that Swing's per-edge routing handles
// non-linear graphs and that the join sees every frame exactly once.
#include <iostream>

#include "apps/scene_analysis.h"
#include "apps/testbed.h"
#include "common/table.h"
#include "dataflow/function_unit.h"

using namespace swing;

int main() {
  apps::TestbedConfig config;
  config.workers = {"G", "H", "I"};
  config.weak_signal_bcd = false;
  apps::Testbed bed{config};

  apps::SceneAnalysisConfig app;
  app.fps = 10.0;
  app.max_frames = 100;
  bed.launch(apps::scene_analysis_graph(app));
  bed.run(seconds(20));
  bed.swarm().shutdown();

  auto& metrics = bed.swarm().metrics();
  std::cout << "fused scenes delivered: " << metrics.frames_arrived() << "/"
            << app.max_frames << "\n";
  const auto stats = metrics.latency_stats();
  std::cout << "scene latency: mean " << fmt(stats.mean(), 0) << " ms, p95 "
            << fmt(stats.quantile(0.95), 0) << " ms\n\n";

  // Where did each branch run? Inspect the camera's two edge managers.
  const auto& g = bed.swarm().graph();
  const auto camera = g.sources()[0];
  TextTable table({"edge", "routed tuples"});
  for (OperatorId down : g.downstreams(camera)) {
    const auto* manager =
        bed.swarm().worker(bed.id("A"))->manager_of(camera, down);
    table.row(g.op(down).name, manager != nullptr ? manager->routed_tuples()
                                                  : 0);
  }
  table.print(std::cout);
  std::cout << "\nBoth branches carried the full stream — fan-out routes a "
               "copy of every frame\nper outgoing edge, and the fusion "
               "unit joined each pair exactly once.\n";
  return 0;
}
