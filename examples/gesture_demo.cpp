// Gesture recognition demo: a 50 Hz accelerometer stream is windowed on
// the sensing phone (cheap, order-sensitive) while the expensive
// classification fans out to the swarm. Prints the recognised gesture
// timeline against the ground truth.
#include <iostream>
#include <memory>
#include <vector>

#include "apps/gesture_recognition.h"
#include "apps/testbed.h"
#include "common/table.h"
#include "dataflow/function_unit.h"

using namespace swing;

namespace {

struct Timeline {
  std::vector<std::pair<std::uint64_t, std::string>> labels;
};

// The display sink: records each recognised gesture with its window index.
// swing-lint: stateless — the timeline is an output channel, not operator
// state to checkpoint.
class GestureDisplay final : public dataflow::FunctionUnit {
 public:
  explicit GestureDisplay(std::shared_ptr<Timeline> out)
      : out_(std::move(out)) {}

  void process(const dataflow::Tuple& input, dataflow::Context&) override {
    const auto* gesture = input.get_as<std::string>("gesture");
    if (gesture != nullptr) {
      out_->labels.emplace_back(input.id().value(), *gesture);
    }
  }

 private:
  std::shared_ptr<Timeline> out_;
};

}  // namespace

int main() {
  auto timeline = std::make_shared<Timeline>();

  apps::GestureConfig config;
  config.max_samples = 800;  // 32 windows = 16 seconds of gestures.
  config.display = [timeline] {
    return std::make_unique<GestureDisplay>(timeline);
  };

  apps::TestbedConfig bed_config;
  bed_config.workers = {"G", "H"};
  bed_config.weak_signal_bcd = false;
  apps::Testbed bed{bed_config};
  bed.launch(apps::gesture_recognition_graph(config));
  bed.run(seconds(25));
  bed.swarm().shutdown();

  std::cout << "gesture timeline (0.5 s windows):\n";
  TextTable table({"window", "t (s)", "recognised", "ground truth", ""});
  int correct = 0;
  for (const auto& [window, label] : timeline->labels) {
    const std::string truth = apps::true_gesture(window);
    if (label == truth) ++correct;
    if (window % 2 == 0) {
      table.row(window, double(window) * 0.5, label, truth,
                label == truth ? "" : "<- miss");
    }
  }
  table.print(std::cout);
  std::cout << "\naccuracy: " << correct << "/" << timeline->labels.size()
            << " windows — heavy classification ran on the swarm, "
               "windowing stayed on the sensing phone\n";
  return 0;
}
