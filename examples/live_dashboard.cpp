// Live dashboard: runs the face-recognition swarm paced against the wall
// clock (Simulator::run_realtime) and prints a per-second status line while
// it happens — the closest thing to watching the paper's Android prototype
// run. Device G walks out of range halfway through; watch the swarm shift.
//
// Pass --fast to run at 20x wall speed (default 4x, ~7 s of real time).
#include <cstring>
#include <iostream>

#include "apps/face_recognition.h"
#include "apps/testbed.h"
#include "common/table.h"

using namespace swing;

int main(int argc, char** argv) {
  double speed = 4.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) speed = 20.0;
  }

  apps::TestbedConfig config;
  config.workers = {"B", "G", "H"};
  config.weak_signal_bcd = false;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  auto& swarm = bed.swarm();
  auto& sim = bed.sim();

  const SimTime t0 = sim.now();
  sim.schedule_at(t0 + seconds(14), [&] {
    swarm.walker(bed.id("G")).jump_to_rssi(-78.0);
  });

  std::cout << "live face-recognition swarm (sim time " << 1.0 / speed
            << "x wall time; G loses signal at t=14s)\n";
  std::cout << "  t   FPS   mean lat   G RSSI   load B/G/H (FPS)\n";

  std::size_t prev_frames = 0;
  std::uint64_t prev_b = 0, prev_g = 0, prev_h = 0;
  for (int s = 1; s <= 28; ++s) {
    sim.run_realtime(seconds(1), speed);
    const auto& m = swarm.metrics();
    const auto frames = m.frames_arrived();
    const auto stats = m.latency_stats(t0 + seconds(double(s - 1)),
                                       t0 + seconds(double(s)));
    const auto b = m.device(bed.id("B")).frames_from_source;
    const auto g = m.device(bed.id("G")).frames_from_source;
    const auto h = m.device(bed.id("H")).frames_from_source;
    std::printf(" %3d  %4zu   %6.0fms   %5.0fdBm   %llu/%llu/%llu\n", s,
                frames - prev_frames, stats.mean(),
                swarm.medium().rssi(bed.id("G")),
                (unsigned long long)(b - prev_b),
                (unsigned long long)(g - prev_g),
                (unsigned long long)(h - prev_h));
    std::fflush(stdout);
    prev_frames = frames;
    prev_b = b;
    prev_g = g;
    prev_h = h;
  }
  std::cout << "\nG's share moved to B and H within ~2 seconds of the "
               "signal collapse; the stream never stalled.\n";
  return 0;
}
