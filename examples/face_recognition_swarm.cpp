// The paper's motivating scenario (§I): a security team patrols with nine
// phones; no single device sustains 24 FPS face recognition, but the swarm
// does. Runs the full testbed twice — every phone for itself vs Swing with
// LRS — and prints the difference.
#include <iostream>

#include "apps/face_recognition.h"
#include "apps/testbed.h"
#include "common/table.h"

using namespace swing;

namespace {

struct Outcome {
  double fps;
  double mean_latency_ms;
  double p95_latency_ms;
};

Outcome run_single_device(const std::string& worker) {
  apps::TestbedConfig config;
  config.workers = {worker};
  config.weak_signal_bcd = false;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(30));
  const SimTime t = bed.sim().now();
  const auto stats =
      bed.swarm().metrics().latency_stats(t - seconds(20), t);
  return {bed.swarm().metrics().throughput_fps(t - seconds(20), t),
          stats.mean(), stats.quantile(0.95)};
}

Outcome run_swarm() {
  apps::Testbed bed;  // Full 9-device testbed, LRS.
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(30));
  const SimTime t = bed.sim().now();
  const auto stats =
      bed.swarm().metrics().latency_stats(t - seconds(20), t);
  return {bed.swarm().metrics().throughput_fps(t - seconds(20), t),
          stats.mean(), stats.quantile(0.95)};
}

}  // namespace

int main() {
  std::cout << "Face recognition at 24 FPS: single device vs the swarm\n\n";

  TextTable table({"configuration", "throughput (FPS)", "mean latency (ms)",
                   "p95 latency (ms)"});
  for (const std::string name : {"E", "B", "H"}) {
    const Outcome o = run_single_device(name);
    table.row(device::profile_by_name(name).model + " alone", o.fps,
              o.mean_latency_ms, o.p95_latency_ms);
  }
  const Outcome swarm = run_swarm();
  table.row("Swing swarm (9 devices, LRS)", swarm.fps,
            swarm.mean_latency_ms, swarm.p95_latency_ms);
  table.print(std::cout);

  std::cout << "\nNo phone alone reaches the 24 FPS needed for smooth "
               "video;\nthe swarm hits the target with sub-second "
               "latency.\n";
  return 0;
}
