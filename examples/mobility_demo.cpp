// Dynamism walkthrough: devices join mid-run, a user walks away from the
// access point (RSSI decays smoothly with distance), and a phone dies
// abruptly — while Swing keeps the face-recognition stream alive. Prints a
// per-second timeline of what the swarm is doing.
#include <iostream>

#include "apps/face_recognition.h"
#include "apps/testbed.h"
#include "common/table.h"

using namespace swing;

int main() {
  apps::TestbedConfig config;
  config.workers = {"B", "G", "H"};
  config.weak_signal_bcd = false;
  apps::Testbed bed{config};
  auto& swarm = bed.swarm();
  auto& sim = bed.sim();

  // Start with just B; the phone closest to the camera does what it can.
  swarm.launch_master(bed.id("A"), apps::face_recognition_graph());
  swarm.launch_worker(bed.id("B"));
  sim.run_for(seconds(1));
  swarm.start();
  const SimTime t0 = sim.now();

  // Timeline of events.
  sim.schedule_at(t0 + seconds(8), [&] { swarm.launch_worker(bed.id("G")); });
  sim.schedule_at(t0 + seconds(16), [&] { swarm.launch_worker(bed.id("H")); });
  // At 24 s, G's user walks away from the AP at pedestrian speed; the
  // log-distance path-loss model turns distance into RSSI decay.
  sim.schedule_at(t0 + seconds(24), [&] {
    swarm.medium().set_rssi_override(bed.id("G"), std::nullopt);
    swarm.medium().set_position(bed.id("G"), {2.0, 0.0});
    swarm.walker(bed.id("G")).walk_to({120.0, 0.0}, 1.5);
  });
  // At 40 s, B's battery dies without warning.
  sim.schedule_at(t0 + seconds(40), [&] { swarm.leave_abruptly(bed.id("B")); });

  TextTable table({"t (s)", "event", "FPS", "G RSSI (dBm)", "members"});
  std::size_t prev_frames = 0;
  const char* events[60] = {};
  events[8] = "G joins";
  events[16] = "H joins";
  events[24] = "G walks away";
  events[40] = "B dies abruptly";

  for (int s = 1; s <= 50; ++s) {
    sim.run_until(t0 + seconds(double(s)));
    const auto frames = swarm.metrics().frames_arrived();
    if (s % 2 == 0 || (s < 60 && events[s] != nullptr)) {
      table.row(s, events[s] ? events[s] : "",
                double(frames - prev_frames),
                fmt(swarm.medium().rssi(bed.id("G")), 0),
                swarm.master()->member_count());
    }
    prev_frames = frames;
  }
  table.print(std::cout);

  std::cout << "\nThe stream survives joins, a user walking out of range "
               "and an abrupt death;\nthroughput follows the available "
               "capacity throughout.\n";
  return 0;
}
