// Walkthrough of the Swing workflow, mirroring the paper's Fig. 3:
//
//   (1) Install  — every device has the app (function units) available.
//   (2) Join     — one device launches a master; others discover it via
//                  NSD and connect as workers.
//   (3) Deploy   — the master activates function units on each member and
//                  wires routing tables.
//   (4) Run      — the source senses, downstream units compute, and the
//                  swarm manager re-balances every second.
//
// At each step this example prints what the framework state actually looks
// like, using only public introspection APIs.
#include <iostream>

#include "apps/face_recognition.h"
#include "common/table.h"
#include "device/profile.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

using namespace swing;

int main() {
  Simulator sim;
  runtime::Swarm swarm{sim};

  std::cout << "== Step 1: Install ==\n";
  const dataflow::AppGraph graph = apps::face_recognition_graph();
  std::cout << "app graph \"face recognition\" with "
            << graph.operators().size() << " function units:\n";
  for (const auto& op : graph.operators()) {
    std::cout << "  - " << op.name << " ("
              << (op.kind == dataflow::OperatorKind::kSource   ? "source"
                  : op.kind == dataflow::OperatorKind::kSink   ? "sink"
                                                               : "transform")
              << ")\n";
  }

  std::cout << "\n== Step 2: Launch & Join ==\n";
  const auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
  const auto g = swarm.add_device(device::profile_G(), {2.0, 0.0});
  const auto h = swarm.add_device(device::profile_H(), {2.5, 0.0});
  swarm.launch_master(a, graph);
  std::cout << "master launched on device " << a
            << "; service advertised via discovery\n";
  swarm.launch_worker(g);
  swarm.launch_worker(h);
  sim.run_for(seconds(1));
  std::cout << "workers discovered and joined; members: "
            << swarm.master()->member_count() << "\n";

  std::cout << "\n== Step 3: Deploy ==\n";
  TextTable placement({"function unit", "instances", "devices"});
  for (const auto& op : swarm.graph().operators()) {
    const auto instances = swarm.master()->instances_of(op.id);
    std::string devices;
    for (const auto& info : instances) {
      if (!devices.empty()) devices += ", ";
      devices += std::to_string(info.device.value());
    }
    placement.row(op.name, instances.size(), devices);
  }
  placement.print(std::cout);

  std::cout << "\n== Step 4: Execute ==\n";
  swarm.start();
  sim.run_for(seconds(10));
  const auto camera = swarm.graph().sources()[0];
  const auto* manager = swarm.worker(a)->manager_of(camera);
  std::cout << "after 10 s at 24 FPS:\n";
  std::cout << "  frames delivered: " << swarm.metrics().frames_arrived()
            << "\n";
  std::cout << "  source routing table (downstream latency estimates):\n";
  for (const auto& est : manager->estimator().estimates()) {
    std::cout << "    instance " << est.id << ": L = "
              << fmt(est.latency_ms, 1) << " ms, W = "
              << fmt(est.processing_ms, 1) << " ms\n";
  }
  std::cout << "  current selection: "
            << manager->decision().selected.size() << " of "
            << manager->downstreams().size() << " downstreams\n";
  return 0;
}
