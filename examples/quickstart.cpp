// Quickstart: build a custom Swing app and run it on a small swarm.
//
// Defines a 3-stage pipeline (sensor -> analyzer -> display) with the
// dataflow API, deploys it across three simulated phones, and prints what
// the swarm delivered. Mirrors the paper's §IV-A programming-model example.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "dataflow/function_unit.h"
#include "dataflow/graph.h"
#include "device/profile.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

using namespace swing;

namespace {

// An "analyzer" function unit: computes a feature score from the sensed
// sample, paper-style: receive a tuple, compute, send the result onward.
class Analyzer final : public dataflow::FunctionUnit {
 public:
  void process(const dataflow::Tuple& input,
               dataflow::Context& ctx) override {
    const auto* sample = input.get_as<std::int64_t>("sample");
    if (sample == nullptr) return;
    dataflow::Tuple out = input.derive();
    out.set("score", double(*sample % 100) / 100.0);
    ctx.emit(std::move(out));
  }
};

dataflow::AppGraph make_app() {
  dataflow::AppGraph graph;

  // Source: a sensor emitting 10 samples/s, each a 4 kB reading.
  dataflow::SourceSpec sensor;
  sensor.rate_per_s = 10.0;
  sensor.max_tuples = 300;  // 30 seconds of data.
  sensor.generate = [](TupleId id, SimTime, Rng&) {
    dataflow::Tuple t;
    t.set("sample", std::int64_t(id.value() * 37));
    t.set("payload", dataflow::Blob{4096, id.value()});
    return t;
  };
  const auto src = graph.add_source("sensor", std::move(sensor));

  // Transform: 40 ms of reference-device compute per sample.
  const auto analyzer = graph.add_transform(
      "analyzer", [] { return std::make_unique<Analyzer>(); },
      dataflow::constant_cost(40.0));

  const auto sink = graph.add_sink("display");

  graph.connect(src, analyzer).connect(analyzer, sink);
  return graph;
}

}  // namespace

int main() {
  Simulator sim;
  runtime::SwarmConfig config;
  // Record every tuple's hop-level lifecycle (emit -> route -> tx -> queue
  // -> process -> ack -> display) for Perfetto.
  config.trace.enabled = true;
  runtime::Swarm swarm{sim, config};

  // Three phones near the access point; the user's own phone (a Galaxy S3)
  // runs the master plus source and sink.
  const DeviceId phone = swarm.add_device(device::profile_A(), {2.0, 0.0});
  const DeviceId tablet = swarm.add_device(device::profile_C(), {4.0, 1.0});
  const DeviceId spare = swarm.add_device(device::profile_H(), {3.0, -2.0});

  swarm.launch_master(phone, make_app());
  swarm.launch_worker(tablet);
  swarm.launch_worker(spare);

  sim.run_for(seconds(1.0));  // Discovery + deployment.
  swarm.start();
  sim.run_for(seconds(35.0));
  swarm.shutdown();

  auto& metrics = swarm.metrics();
  const auto latency = metrics.latency_stats();

  std::printf("delivered %zu/300 samples\n", metrics.frames_arrived());
  std::printf("mean end-to-end latency: %.1f ms (p95 %.1f ms)\n",
              latency.mean(), latency.quantile(0.95));

  TextTable table({"device", "frames in", "kB in", "mean CPU"});
  for (DeviceId id : swarm.devices()) {
    const auto& counters = metrics.device(id);
    table.row(id.value(), counters.frames_in,
              double(counters.bytes_in) / 1000.0,
              fmt(100.0 * counters.cpu_util.mean(), 1) + "%");
  }
  table.print(std::cout);

  const char* trace_path = "swing_trace.json";
  if (swarm.tracer().write_chrome_trace_file(trace_path)) {
    std::printf("wrote %zu trace events to %s — open it at "
                "https://ui.perfetto.dev (or chrome://tracing)\n",
                swarm.tracer().events(), trace_path);
  }
  return 0;
}
