// The paper's second scenario: a group of travellers pools their phones to
// translate native speech in real time. Demonstrates a custom sink function
// unit (the "display") that captures translated text, and shows the swarm
// keeping up with a stream no single phone could.
#include <iostream>
#include <memory>
#include <vector>

#include "apps/testbed.h"
#include "apps/voice_translation.h"
#include "common/table.h"
#include "dataflow/function_unit.h"

using namespace swing;

namespace {

// Shared capture buffer the display unit writes into.
struct Captions {
  std::vector<std::pair<std::uint64_t, std::string>> lines;
};

// A custom sink: the paper's "display results" unit. Receives translated
// tuples and renders them (here: records them for printing).
// swing-lint: stateless — the caption list is an output channel, not
// operator state to checkpoint.
class CaptionDisplay final : public dataflow::FunctionUnit {
 public:
  explicit CaptionDisplay(std::shared_ptr<Captions> out)
      : out_(std::move(out)) {}

  void process(const dataflow::Tuple& input,
               dataflow::Context& /*ctx*/) override {
    const auto* text = input.get_as<std::string>("text_es");
    if (text != nullptr) {
      out_->lines.emplace_back(input.id().value(), *text);
    }
  }

 private:
  std::shared_ptr<Captions> out_;
};

}  // namespace

int main() {
  auto captions = std::make_shared<Captions>();

  // The stock voice-translation graph with our own display sink plugged in.
  apps::VoiceTranslationConfig config;
  config.fps = 8.0;
  config.max_frames = 64;
  config.display = [captions] {
    return std::make_unique<CaptionDisplay>(captions);
  };

  // Four travellers' phones: one senses, three help compute.
  apps::TestbedConfig bed_config;
  bed_config.workers = {"G", "H", "I"};
  bed_config.weak_signal_bcd = false;
  apps::Testbed bed{bed_config};
  bed.launch(apps::voice_translation_graph(config));
  bed.run(seconds(30));
  bed.swarm().shutdown();

  std::cout << "Live translation captions (first 10 of "
            << captions->lines.size() << "):\n";
  for (std::size_t i = 0; i < captions->lines.size() && i < 10; ++i) {
    std::cout << "  [" << captions->lines[i].first << "] "
              << captions->lines[i].second << '\n';
  }

  const auto stats = bed.swarm().metrics().latency_stats();
  std::cout << "\ndelivered " << bed.swarm().metrics().frames_arrived()
            << "/" << config.max_frames << " segments, mean latency "
            << fmt(stats.mean(), 0) << " ms\n";
  return 0;
}
